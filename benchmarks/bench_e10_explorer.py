"""E10 -- the in-place do/undo exploration core, before vs after.

The shared transition engine (:mod:`repro.core.engine_state`) replaced the
copy-everything snapshot loops inside the naive enumerator, the DPOR
explorer, and the guided SC-membership search.  This benchmark times the
frozen pre-change enumerators (:mod:`repro.core._legacy`) against the
engine-based ones on the same exhaustive-exploration workloads and checks,
on every row, that the two sides produce **bit-identical observable
answers**: equal SC result sets, equal ``complete`` flags, and equal DRF0
verdicts.

Output:

* a human-readable speedup table (``benchmarks/results/E10.txt``);
* a machine-readable ``benchmarks/results/BENCH_explorer.json`` with
  per-row timings and the new engine's exploration counters;
* a regression gate: the aggregate speedup is compared against the
  checked-in ``BENCH_explorer_baseline.json`` and the run **fails** when it
  regresses by more than 25%.  Comparing speedup *ratios* (not absolute
  times) makes the gate self-normalizing across machines: both sides of
  every ratio run in the same process on the same host.

Run modes::

    python benchmarks/bench_e10_explorer.py            # full suite
    python benchmarks/bench_e10_explorer.py --quick    # CI-sized suite
    pytest benchmarks/bench_e10_explorer.py            # full suite
    REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e10_explorer.py
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from conftest import RESULTS_DIR, emit_table

from repro.core._legacy import (
    legacy_check_program,
    legacy_check_program_dpor,
    legacy_explore,
    legacy_explore_dpor,
    legacy_is_sc_result,
)
from repro.core.contract import is_sc_result
from repro.core.dpor import explore_dpor
from repro.core.drf0 import check_program
from repro.core.engine_state import ExplorerStats
from repro.core.sc import ExplorationConfig, explore, sc_results
from repro.litmus.catalog import by_name
from repro.machine.generator import GeneratorConfig, random_program
from repro.machine.program import Program

JSON_PATH = RESULTS_DIR / "BENCH_explorer.json"
BASELINE_PATH = RESULTS_DIR / "BENCH_explorer_baseline.json"

#: Fail the gate when the aggregate speedup drops below this fraction of
#: the checked-in baseline's.
REGRESSION_TOLERANCE = 0.25


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _workloads(quick: bool) -> List[Tuple[str, Program]]:
    """Exhaustive-exploration workloads: E6-class litmus + generated."""
    names = ["SB", "MP", "LB", "2+2W", "WRC", "IRIW"]
    programs = [(name, by_name(name).program) for name in names]
    gen_cfg = GeneratorConfig(max_threads=3 if quick else 4,
                              max_ops_per_thread=4 if quick else 5)
    for seed in (24,) if quick else (5, 7):
        program = random_program(seed, gen_cfg)
        if program.num_procs >= 3:
            programs.append((f"gen{seed}", program))
    return programs


def _time(fn: Callable[[], object], repeats: int) -> Tuple[float, object]:
    """Best-of-``repeats`` wall-clock time and the (last) return value.

    Sub-millisecond rows get a ~100 ms best-of budget instead: at that
    scale a handful of repeats still sits well above the true floor, and
    litmus-sized rows are exactly where the small-program regression
    lived, so their numbers must not be timer noise.
    """
    start = time.perf_counter()
    value: object = fn()
    best = time.perf_counter() - start
    if best < 0.05:
        # Re-measure before choosing the repeat depth: the first call may
        # have paid one-time per-program costs (closure compilation, meta
        # caches) that would make a micro-row look big enough to skip the
        # deep best-of it needs.
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    if best < 0.001:
        repeats = min(700, int(0.1 / max(best, 1e-6)) + 1)
    for _ in range(repeats - 1):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _bench_modes(
    name: str, program: Program, repeats: int
) -> List[Dict[str, object]]:
    """Time every (legacy, new) explorer pair on one program.

    Each row asserts the observable answers are bit-identical before it is
    reported -- a speedup over a wrong answer is worthless.
    """
    rows: List[Dict[str, object]] = []
    cfg_naive = ExplorationConfig(dedup=False)
    cfg_dedup = ExplorationConfig(dedup=True)

    def row(mode, legacy_s, new_s, stats: Optional[ExplorerStats]):
        rows.append(
            {
                "workload": name,
                "mode": mode,
                "legacy_s": legacy_s,
                "new_s": new_s,
                "speedup": legacy_s / new_s if new_s else float("inf"),
                "stats": stats.as_dict() if stats is not None else None,
            }
        )

    # Naive enumeration of every interleaving (sc_executions-style).
    legacy_s, legacy_out = _time(lambda: legacy_explore(program, cfg_naive), repeats)
    new_s, new_out = _time(lambda: explore(program, cfg_naive), repeats)
    assert legacy_out.results == new_out.results, f"{name}: naive result sets differ"
    assert legacy_out.complete == new_out.complete
    assert len(legacy_out.executions) == len(new_out.executions)
    row("naive", legacy_s, new_s, new_out.stats)

    # Deduplicated result-set exploration (sc_results-style).
    legacy_s, legacy_out = _time(lambda: legacy_explore(program, cfg_dedup), repeats)
    new_s, new_out = _time(lambda: explore(program, cfg_dedup), repeats)
    assert legacy_out.results == new_out.results, f"{name}: dedup result sets differ"
    assert legacy_out.complete == new_out.complete
    row("dedup", legacy_s, new_s, new_out.stats)

    # DPOR representative enumeration.  Stats are created inside the timed
    # callable so best-of repeats don't accumulate into one counter.
    def dpor_with_stats():
        st = ExplorerStats()
        return explore_dpor(program, stats=st), st

    legacy_s, legacy_execs = _time(lambda: legacy_explore_dpor(program), repeats)
    new_s, (new_execs, stats) = _time(dpor_with_stats, repeats)
    assert {e.result() for e in legacy_execs} == {e.result() for e in new_execs}, (
        f"{name}: DPOR result sets differ"
    )
    row("dpor", legacy_s, new_s, stats)

    # DRF0 verdict over all interleavings, race-checked as produced.
    legacy_s, legacy_report = _time(lambda: legacy_check_program(program), repeats)
    new_s, new_report = _time(lambda: check_program(program), repeats)
    assert legacy_report.obeys == new_report.obeys, f"{name}: DRF0 verdicts differ"
    assert (
        legacy_check_program_dpor(program).obeys
        == new_report.obeys
    )
    row("drf0", legacy_s, new_s, new_report.stats)

    # Guided SC-membership search, judged over the program's own SC set.
    results = sorted(sc_results(program), key=repr)[:4]

    def judge_new():
        st = ExplorerStats()
        return [is_sc_result(program, r, stats=st) for r in results], st

    def judge_legacy():
        return [legacy_is_sc_result(program, r) for r in results]

    legacy_s, legacy_verdicts = _time(judge_legacy, repeats)
    new_s, (new_verdicts, stats) = _time(judge_new, repeats)
    assert legacy_verdicts == new_verdicts == [True] * len(results)
    row("contract", legacy_s, new_s, stats)
    return rows


def _aggregate(rows: List[Dict[str, object]]) -> Dict[str, Dict[str, float]]:
    """Per-mode and overall totals (total legacy time / total new time)."""
    out: Dict[str, Dict[str, float]] = {}
    for scope in ["naive", "dedup", "dpor", "drf0", "contract", "overall"]:
        scoped = [
            r for r in rows if scope == "overall" or r["mode"] == scope
        ]
        legacy_s = sum(r["legacy_s"] for r in scoped)
        new_s = sum(r["new_s"] for r in scoped)
        out[scope] = {
            "legacy_s": legacy_s,
            "new_s": new_s,
            "speedup": legacy_s / new_s if new_s else float("inf"),
        }
    return out


def run_benchmark(quick: Optional[bool] = None) -> Dict[str, object]:
    """Run the suite, emit the table + JSON, and apply the regression gate."""
    if quick is None:
        quick = _quick()
    # Best-of-2 even in quick mode: the first engine call on a program
    # pays its one-time closure compilation, which would otherwise be
    # charged entirely to the first row (naive) of each workload.
    repeats = 2 if quick else 3
    rows: List[Dict[str, object]] = []
    for name, program in _workloads(quick):
        rows.extend(_bench_modes(name, program, repeats))
    aggregate = _aggregate(rows)

    def fmt_stats(r):
        stats = r["stats"]
        if not stats:
            return "-"
        per_sec = stats["states"] / r["new_s"] if r["new_s"] else 0.0
        return (
            f"{stats['states']}st {stats['sleep_cuts']}cut "
            f"{per_sec:,.0f}st/s"
        )

    emit_table(
        "E10",
        "in-place do/undo engine vs legacy snapshot explorers"
        + (" (quick)" if quick else ""),
        ["workload", "mode", "legacy (s)", "engine (s)", "speedup", "engine stats"],
        [
            [
                r["workload"],
                r["mode"],
                f"{r['legacy_s']:.4f}",
                f"{r['new_s']:.4f}",
                f"{r['speedup']:.2f}x",
                fmt_stats(r),
            ]
            for r in rows
        ]
        + [
            [
                "TOTAL",
                scope,
                f"{agg['legacy_s']:.4f}",
                f"{agg['new_s']:.4f}",
                f"{agg['speedup']:.2f}x",
                "",
            ]
            for scope, agg in aggregate.items()
        ],
        notes=(
            "Every row asserts bit-identical result sets / complete flags / "
            "DRF0 verdicts between the legacy and engine explorers."
        ),
    )

    report = {"quick": quick, "rows": rows, "aggregate": aggregate}
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")

    # Acceptance: the exhaustive-exploration modes must show the >=2x
    # speedup the refactor was for (checked on the full suite; the quick
    # suite is dominated by fixed per-call overhead on tiny programs).
    if not quick:
        for scope in ("naive", "dpor"):
            speedup = aggregate[scope]["speedup"]
            assert speedup >= 2.0, (
                f"{scope} aggregate speedup {speedup:.2f}x < 2x"
            )

    # Regression gate vs the checked-in baseline.  The baseline keeps one
    # aggregate per suite variant (the quick and full suites time different
    # workloads, so their ratios are not comparable to each other).
    variant = "quick" if quick else "full"
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base_agg = baseline.get(variant)
        if not isinstance(base_agg, dict):
            print(f"baseline has no '{variant}' aggregate; gate skipped")
        else:
            base = base_agg["overall"]["speedup"]
            now = aggregate["overall"]["speedup"]
            floor = base * (1.0 - REGRESSION_TOLERANCE)
            print(
                f"regression gate ({variant}): overall speedup {now:.2f}x "
                f"vs baseline {base:.2f}x (floor {floor:.2f}x)"
            )
            assert now >= floor, (
                f"explorer speedup regressed: {now:.2f}x is more than "
                f"{REGRESSION_TOLERANCE:.0%} below the baseline {base:.2f}x"
            )
    else:
        print(f"no baseline at {BASELINE_PATH}; gate skipped")
    return report


def test_explorer_benchmark():
    """Pytest entry point (quick when REPRO_BENCH_QUICK is set)."""
    run_benchmark()


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    run_benchmark(quick=quick)
