"""E6 -- the quantitative comparison the paper names as future work.

"A quantitative performance analysis comparing implementations for the
old and new definitions of weak ordering would provide useful insight."
(Section 7.)  This experiment runs the workload suite under all four
memory systems and reports mean cycles and total stall cycles.  Expected
shape (the paper's qualitative claims):

* both weak orderings beat SC wherever data writes can overlap;
* the new implementation is at least as fast as Definition 1 everywhere,
  and strictly faster wherever a releasing processor has post-release
  work (Figure 3's asymmetry);
* the DRF1 variant wins on spin-heavy workloads (Section 6).

The seed loop fans out through the parallel verification engine
(``REPRO_BENCH_JOBS`` workers, default one per CPU); per-seed cycle and
stall counts are identical to serial runs, so the assertions stand.
"""

import os

from conftest import emit_table, mean

from repro.hw import (
    AdveHillPolicy,
    Definition1Policy,
    ReleaseConsistencyPolicy,
    SCPolicy,
)
from repro.sim.system import SystemConfig
from repro.verify import VerificationEngine
from repro.workloads import (
    barrier_workload,
    contended_release_workload,
    lock_workload,
    phase_parallel_workload,
    producer_consumer_workload,
)

SEEDS = range(12)

POLICIES = [
    ("sc", SCPolicy),
    ("definition1", Definition1Policy),
    ("release-consistency", ReleaseConsistencyPolicy),
    ("adve-hill", AdveHillPolicy),
    ("adve-hill-drf1", lambda: AdveHillPolicy(drf1_optimized=True)),
]


def workloads():
    return [
        lock_workload(4, 2),
        lock_workload(4, 2, ttas=True),
        contended_release_workload(num_spinners=3, hold_cycles=200),
        producer_consumer_workload(batch_size=12, post_release_work=50),
        producer_consumer_workload(batch_size=4, rounds=3),
        barrier_workload(num_procs=4, phases=2),
        phase_parallel_workload(num_procs=4, chunk=4, phases=2),
    ]


JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or (os.cpu_count() or 1)
ENGINE = VerificationEngine(jobs=JOBS)


def performance_table():
    rows = []
    for program in workloads():
        cells = {}
        for name, factory in POLICIES:
            summaries = ENGINE.hardware_summaries(
                program, factory, SystemConfig(), seeds=SEEDS
            )
            cycles = [s.cycles for s in summaries]
            stalls = [s.stall_cycles for s in summaries]
            cells[name] = (mean(cycles), mean(stalls))
        rows.append(
            (
                program.name,
                *(f"{cells[name][0]:.0f}" for name, _ in POLICIES),
                f"{cells['sc'][0] / cells['adve-hill'][0]:.2f}",
            )
        )
    return rows


def test_e6_quantitative_comparison(benchmark):
    rows = benchmark.pedantic(performance_table, rounds=1, iterations=1)
    emit_table(
        "E6",
        "Mean cycles per workload (12 seeds) -- the Section-7 study",
        ["workload", "sc", "definition1", "release-consistency", "adve-hill",
         "adve-hill-drf1", "speedup ah/sc"],
        rows,
        notes=(
            "Expected shape: adve-hill <= release-consistency <= definition1\n"
            "<= sc (small noise tolerated); DRF1 wins on spin-heavy rows."
        ),
    )
    for row in rows:
        sc, def1, rc, ah = (
            float(row[1]), float(row[2]), float(row[3]), float(row[4])
        )
        assert def1 <= sc * 1.05, row
        assert rc <= def1 * 1.05, row
        assert ah <= rc * 1.05, row
    # The headline claim: the new implementation strictly beats SC overall.
    total_sc = sum(float(r[1]) for r in rows)
    total_ah = sum(float(r[4]) for r in rows)
    assert total_ah < total_sc
