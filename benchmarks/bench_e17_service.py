"""E17 -- the campaign daemon: service overhead, warm repeats, chaos cost.

PR 10 added ``repro serve``: a fault-tolerant daemon that runs
verification campaigns over a supervised worker fleet with leases,
retry/backoff, and circuit breaking.  Its promise is that the service
semantics are (nearly) free and *never* change the answers.  This
benchmark prices the three claims:

* **cold overhead** -- submit one campaign to a fresh daemon and compare
  submit-to-result wall clock against the same sweep as an in-process
  batch call with the same parallelism.  Gated at <= 10% (with an
  absolute noise floor: the daemon adds HTTP hops, a fleet context
  broadcast, and journal/store persistence the batch run skips);
* **warm repeat latency** -- resubmit the identical spec: the daemon
  answers from the shared content-addressed verdict store.  Gated to be
  no slower than the cold run; the warm/cold ratio is the service's
  repeat-query win and is recorded in the JSON report;
* **chaos-kill inflation** -- the same campaign with one injected
  worker crash (an engine failpoint inside a fleet worker): the
  completion-time inflation over cold is the price of one supervised
  death (lease reclamation + respawn + retry).  Not time-gated -- the
  gate is that the evidence stays **bit-identical** to the batch run,
  kill or no kill.

Run modes::

    python benchmarks/bench_e17_service.py            # full suite
    python benchmarks/bench_e17_service.py --quick    # CI-sized suite
    REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e17_service.py
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import shutil
import sys
import tempfile
import time
from typing import Dict, Optional

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from conftest import RESULTS_DIR, emit_table

from repro.hw import POLICY_FACTORIES
from repro.litmus.catalog import by_name
from repro.service.client import ServiceClient
from repro.sim.system import SystemConfig
from repro.verify.engine import VerificationEngine

JSON_PATH = RESULTS_DIR / "BENCH_e17_service.json"

#: Budget for daemon-vs-batch cold campaign overhead.
COLD_BUDGET = 0.10
#: Absolute floor under which overhead gates never trip (HTTP hops,
#: fleet context broadcast, result poll granularity).
NOISE_FLOOR_S = 0.75
WORKERS = 2


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _spec(quick: bool) -> Dict[str, object]:
    names = ["MP+sync", "SB"] if quick else ["MP+sync", "SB+sync", "SB"]
    return {
        "programs": names,
        "policies": ["sc", "adve-hill"],
        "seeds": 8 if quick else 40,
        "drf0_seeds": 4 if quick else 20,
    }


def _batch_rows_and_time(spec: Dict[str, object]):
    """The same sweep as an in-process batch call (the daemon's rival)."""
    programs = [by_name(name).program for name in spec["programs"]]
    factories = {n: POLICY_FACTORIES[n] for n in spec["policies"]}
    start = time.perf_counter()
    evidence = VerificationEngine(jobs=WORKERS).definition2_sweep(
        programs,
        factories,
        config=SystemConfig(),
        seeds=range(spec["seeds"]),
        drf0_seeds=range(spec["drf0_seeds"]),
    )
    return time.perf_counter() - start, json.dumps(
        evidence.rows, sort_keys=True
    )


def _start_daemon(state_dir: str):
    from repro.service.daemon import CampaignDaemon

    def entry():
        CampaignDaemon(
            state_dir, port=0, workers=WORKERS, task_timeout=60.0
        ).serve_forever()

    proc = multiprocessing.get_context("fork").Process(target=entry)
    proc.start()
    endpoint = os.path.join(state_dir, "endpoint.json")
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        try:
            with open(endpoint, "r", encoding="utf-8") as handle:
                if json.load(handle).get("pid") == proc.pid:
                    return proc, ServiceClient.from_state_dir(state_dir)
        except (OSError, ValueError):
            pass
        if not proc.is_alive():
            raise RuntimeError("daemon died during startup")
        time.sleep(0.05)
    raise RuntimeError("daemon did not publish its endpoint")


def _stop_daemon(proc, client) -> None:
    try:
        client.shutdown()
    except Exception:
        pass
    proc.join(timeout=30.0)
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=10.0)


def _submit_and_time(client: ServiceClient, spec: Dict[str, object]):
    start = time.perf_counter()
    cid = client.submit_with_backoff(spec)["id"]
    info = client.wait(cid, timeout=600.0, poll=0.02)
    elapsed = time.perf_counter() - start
    assert info["state"] == "done", info
    result = client.result(cid)
    return elapsed, json.dumps(result["rows"], sort_keys=True), result


def run_benchmark(quick: Optional[bool] = None) -> Dict[str, object]:
    if quick is None:
        quick = _quick()
    spec = _spec(quick)
    scratch = tempfile.mkdtemp(prefix="bench-e17-")
    try:
        batch_s, batch_rows = _batch_rows_and_time(spec)

        # Cold + warm share one daemon: the shared verdict store *is*
        # the warm-repeat mechanism under test.
        proc, client = _start_daemon(os.path.join(scratch, "svc"))
        try:
            cold_s, cold_rows, cold_result = _submit_and_time(client, spec)
            warm_s, warm_rows, _warm_result = _submit_and_time(client, spec)
        finally:
            _stop_daemon(proc, client)

        # Chaos runs on a fresh state dir (cold store) so its time is
        # comparable to the cold run, not the warm one.
        chaos_spec = dict(spec)
        chaos_spec["failpoints"] = [
            {
                "task_kind": "run",
                "mode": "crash",
                "token": os.path.join(scratch, "kill-token"),
            }
        ]
        proc, client = _start_daemon(os.path.join(scratch, "svc-chaos"))
        try:
            chaos_s, chaos_rows, chaos_result = _submit_and_time(
                client, chaos_spec
            )
        finally:
            _stop_daemon(proc, client)

        assert os.path.exists(os.path.join(scratch, "kill-token")), (
            "the injected worker kill never fired"
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    # Gate: the daemon never changes the answers -- not cold, not warm,
    # not with a worker murdered mid-campaign.
    assert cold_rows == batch_rows, "daemon (cold) changed the evidence"
    assert warm_rows == batch_rows, "daemon (warm) changed the evidence"
    assert chaos_rows == batch_rows, "daemon (chaos) changed the evidence"
    assert chaos_result["service"].get("worker_crashes", 0) >= 1, (
        chaos_result["service"]
    )

    aggregate = {
        "batch_s": batch_s,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "chaos_s": chaos_s,
        "cold_overhead": cold_s / batch_s - 1.0 if batch_s else 0.0,
        "warm_ratio": warm_s / cold_s if cold_s else 0.0,
        "chaos_inflation": chaos_s / cold_s if cold_s else 0.0,
        "chaos_worker_crashes": chaos_result["service"].get(
            "worker_crashes", 0
        ),
    }

    emit_table(
        "E17",
        "campaign daemon overhead" + (" (quick)" if quick else ""),
        ["mode", "wall (s)", "vs batch", "vs cold"],
        [
            ["batch", f"{batch_s:.3f}", "1.00x", "-"],
            ["daemon cold", f"{cold_s:.3f}",
             f"{cold_s / batch_s:.2f}x", "1.00x"],
            ["daemon warm", f"{warm_s:.3f}",
             f"{warm_s / batch_s:.2f}x", f"{aggregate['warm_ratio']:.2f}x"],
            ["daemon chaos", f"{chaos_s:.3f}",
             f"{chaos_s / batch_s:.2f}x",
             f"{aggregate['chaos_inflation']:.2f}x"],
        ],
        notes=(
            f"Gates: cold <= {COLD_BUDGET:.0%} over batch (noise floor "
            f"{NOISE_FLOOR_S}s), warm no slower than cold, and all three "
            "daemon runs byte-identical to the batch evidence.  The chaos "
            "row includes one injected worker crash "
            f"({aggregate['chaos_worker_crashes']} observed), reclaimed "
            "and retried by the supervisor."
        ),
    )

    overhead_s = cold_s - batch_s
    assert overhead_s <= max(batch_s * COLD_BUDGET, NOISE_FLOOR_S), (
        f"cold daemon campaign costs {aggregate['cold_overhead']:.1%} "
        f"({overhead_s:.3f}s) over the batch sweep "
        f"(budget {COLD_BUDGET:.0%})"
    )
    assert warm_s <= cold_s + NOISE_FLOOR_S, (
        f"warm resubmit ({warm_s:.3f}s) slower than cold ({cold_s:.3f}s): "
        "the verdict store answered nothing"
    )

    report = {"quick": quick, "aggregate": aggregate}
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def test_service_benchmark():
    """Pytest entry point (quick when REPRO_BENCH_QUICK is set)."""
    run_benchmark()


if __name__ == "__main__":
    run_benchmark(quick="--quick" in sys.argv[1:])
