"""E16 -- live campaign telemetry overhead and snapshot latency.

PR 9 added the telemetry plane: worker heartbeat spools, the campaign
progress/ETA engine, and the atomically-replaced ``--status-json``
snapshot.  Its promise is that watching a campaign is (nearly) free and
*never* changes the answers.  This benchmark prices both halves on
E15-quick-sized verification workloads:

* **disabled** -- no monitor anywhere: every instrumented hot path pays
  exactly one ``is None`` check.  Gated against the recorded baseline
  (``BENCH_telemetry_baseline.json``, written on first run): <= 1%
  drift, with an absolute noise floor;
* **enabled**  -- a :class:`~repro.obs.CampaignMonitor` with production
  settings (0.5 s snapshot interval, 0.25 s heartbeats).  Gated at
  <= 3% over the disabled run, same noise floor;
* **snapshot latency** -- the worst single atomic status-file write
  observed while enabled must stay under 100 ms (a stalled write would
  back-pressure the dispatch loop that polls it).

Every row also asserts the enabled run's evidence is **bit-identical**
to the disabled run's -- telemetry must never touch results.

Run modes::

    python benchmarks/bench_e16_telemetry.py            # full suite
    python benchmarks/bench_e16_telemetry.py --quick    # CI-sized suite
    pytest benchmarks/bench_e16_telemetry.py
    REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e16_telemetry.py
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import shutil
import sys
import tempfile
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from conftest import RESULTS_DIR, emit_table

from repro.hw import POLICY_FACTORIES
from repro.litmus.catalog import by_name
from repro.obs import CampaignMonitor
from repro.sim.system import SystemConfig
from repro.verify.engine import VerificationEngine

JSON_PATH = RESULTS_DIR / "BENCH_telemetry.json"
BASELINE_PATH = RESULTS_DIR / "BENCH_telemetry_baseline.json"

#: Budget for telemetry-off drift vs the recorded baseline.
DISABLED_BUDGET = 0.01
#: Budget for the enabled monitor over the disabled run.
ENABLED_BUDGET = 0.03
#: Timer/scheduler noise floor: a row aggregate must exceed both the
#: relative budget and this many seconds before a gate trips.
NOISE_FLOOR_S = 0.08
#: Worst tolerated single snapshot write (atomic tmp + replace).
WRITE_LATENCY_BUDGET_US = 100_000


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _time_best(fn: Callable[[], object], repeats: int = 3):
    """Best-of wall-clock over ``repeats`` runs (multi-second rows run
    once: a best-of would double a double-digit-seconds suite)."""
    gc.collect()
    start = time.perf_counter()
    value = fn()
    best = time.perf_counter() - start
    if best > 2.0:
        return best, value
    for _ in range(repeats - 1):
        gc.collect()
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _rows_key(evidence) -> str:
    return json.dumps(evidence.rows, sort_keys=True)


def _workloads(quick: bool) -> List[Tuple[str, Callable]]:
    """(name, run(monitor)) rows, E15-quick sized: small enough for CI,
    large enough that a 1% gate clears the timer noise floor."""
    seeds = range(8 if quick else 60)
    drf0_seeds = range(4 if quick else 30)
    names = ("MP+sync", "SB") if quick else ("MP+sync", "SB+sync", "SB")
    sweep_programs = [by_name(n).program for n in names]
    factories = {n: POLICY_FACTORIES[n] for n in ("sc", "adve-hill")}

    def sweep(monitor=None):
        engine = VerificationEngine(jobs=1, monitor=monitor)
        return engine.definition2_sweep(
            sweep_programs,
            factories,
            config=SystemConfig(),
            seeds=seeds,
            drf0_seeds=drf0_seeds,
        )

    fuzz_seeds = range(4 if quick else 25)

    def fuzz(monitor=None):
        engine = VerificationEngine(jobs=1, monitor=monitor)
        return engine.fuzz(fuzz_seeds)

    return [("sweep", sweep), ("fuzz", fuzz)]


def run_benchmark(quick: Optional[bool] = None) -> Dict[str, object]:
    if quick is None:
        quick = _quick()
    scratch = tempfile.mkdtemp(prefix="bench-e16-")
    rows: List[Dict[str, object]] = []
    write_us_max = 0
    write_us_total = 0
    writes = 0
    try:
        for name, run in _workloads(quick):
            disabled_s, disabled_out = _time_best(lambda: run())

            monitors: List[CampaignMonitor] = []

            def run_enabled():
                # Production monitor settings; a fresh status path per
                # repeat so O_EXCL spool slots never collide.
                monitor = CampaignMonitor(
                    os.path.join(
                        scratch, f"{name}-{len(monitors)}.json"
                    ),
                    command=f"bench {name}",
                )
                monitors.append(monitor)
                try:
                    out = run(monitor=monitor)
                finally:
                    monitor.finish(ok=True)
                return out

            enabled_s, enabled_out = _time_best(run_enabled)
            for monitor in monitors:
                write_us_max = max(write_us_max, monitor.write_us_max)
                write_us_total += monitor.write_us_total
                writes += monitor.writes

            # Gate: telemetry never touches results.
            if hasattr(disabled_out, "rows"):
                assert _rows_key(disabled_out) == _rows_key(enabled_out), (
                    f"{name}: enabled telemetry changed the evidence"
                )
            rows.append(
                {
                    "workload": name,
                    "disabled_s": disabled_s,
                    "enabled_s": enabled_s,
                    "enabled_overhead": (
                        enabled_s / disabled_s - 1.0 if disabled_s else 0.0
                    ),
                }
            )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)

    total_disabled = sum(r["disabled_s"] for r in rows)
    total_enabled = sum(r["enabled_s"] for r in rows)

    baseline_s = None
    baseline_fresh = False
    if BASELINE_PATH.exists():
        recorded = json.loads(BASELINE_PATH.read_text())
        # A baseline from the other suite size gates nothing useful.
        if recorded.get("quick") == quick:
            baseline_s = recorded.get("total_disabled_s")
    if baseline_s is None:
        # First run on this machine: record the telemetry-off time as
        # the baseline future runs gate their drift against.
        BASELINE_PATH.write_text(
            json.dumps(
                {"total_disabled_s": total_disabled, "quick": quick},
                indent=2,
            )
            + "\n"
        )
        baseline_s = total_disabled
        baseline_fresh = True

    aggregate = {
        "disabled_s": total_disabled,
        "enabled_s": total_enabled,
        "baseline_s": baseline_s,
        "baseline_fresh": baseline_fresh,
        "disabled_drift": (
            total_disabled / baseline_s - 1.0 if baseline_s else 0.0
        ),
        "enabled_overhead": (
            total_enabled / total_disabled - 1.0 if total_disabled else 0.0
        ),
        "snapshot_writes": writes,
        "write_us_mean": write_us_total / writes if writes else 0.0,
        "write_us_max": write_us_max,
    }

    emit_table(
        "E16",
        "telemetry overhead" + (" (quick)" if quick else ""),
        ["workload", "disabled (s)", "enabled (s)", "overhead"],
        [
            [
                r["workload"],
                f"{r['disabled_s']:.4f}",
                f"{r['enabled_s']:.4f}",
                f"{r['enabled_overhead']:+.2%}",
            ]
            for r in rows
        ]
        + [
            [
                "TOTAL",
                f"{total_disabled:.4f}",
                f"{total_enabled:.4f}",
                f"{aggregate['enabled_overhead']:+.2%}",
            ],
            [
                "baseline",
                f"{baseline_s:.4f}" + ("*" if baseline_fresh else ""),
                "-",
                f"{aggregate['disabled_drift']:+.2%} drift",
            ],
        ],
        notes=(
            f"Gates: disabled <= {DISABLED_BUDGET:.0%} over the recorded "
            f"baseline, enabled <= {ENABLED_BUDGET:.0%} over disabled "
            f"(noise floor {NOISE_FLOOR_S}s), worst snapshot write <= "
            f"{WRITE_LATENCY_BUDGET_US / 1000:.0f}ms.  Every row asserts "
            "bit-identical evidence with telemetry on.  "
            f"Snapshot writes: {writes}, mean "
            f"{aggregate['write_us_mean'] / 1000:.2f}ms, max "
            f"{write_us_max / 1000:.2f}ms."
            + ("  (* baseline recorded this run)" if baseline_fresh else "")
        ),
    )

    # Gate: the disabled hot paths stay at one `is None` check.
    drift_s = total_disabled - baseline_s
    assert (
        drift_s <= max(baseline_s * DISABLED_BUDGET, NOISE_FLOOR_S)
    ), (
        f"telemetry-off run drifted {aggregate['disabled_drift']:.1%} "
        f"({drift_s:.3f}s) over the recorded baseline "
        f"(budget {DISABLED_BUDGET:.0%})"
    )

    # Gate: the live monitor is cheap.
    overhead_s = total_enabled - total_disabled
    assert (
        overhead_s <= max(total_disabled * ENABLED_BUDGET, NOISE_FLOOR_S)
    ), (
        f"enabled telemetry costs {aggregate['enabled_overhead']:.1%} "
        f"({overhead_s:.3f}s) over disabled (budget {ENABLED_BUDGET:.0%})"
    )

    # Gate: snapshot writes are bounded.
    assert writes > 0, "enabled runs never wrote a snapshot"
    assert write_us_max <= WRITE_LATENCY_BUDGET_US, (
        f"worst snapshot write took {write_us_max / 1000:.1f}ms "
        f"(budget {WRITE_LATENCY_BUDGET_US / 1000:.0f}ms)"
    )

    report = {"quick": quick, "rows": rows, "aggregate": aggregate}
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def test_telemetry_benchmark():
    """Pytest entry point (quick when REPRO_BENCH_QUICK is set)."""
    run_benchmark()


if __name__ == "__main__":
    run_benchmark(quick="--quick" in sys.argv[1:])
