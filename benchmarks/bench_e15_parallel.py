"""E15 -- intra-cell parallel exploration vs the serial compiled engine.

E14 made the serial engine fast; E15 makes one *exploration* scale.
:mod:`repro.core.parallel` shards a single query (result-set
enumeration, DPOR, DRF0, guided membership) across a fork pool of
compiled engines: phase 1 enumerates a deterministic prefix frontier,
phase 2 dispatches subtrees, phase 3 merges -- and source-DPOR workers
feed newly discovered backtrack points back to the coordinator as steal
reports, with sleep-set seeds keeping stolen subtrees disjoint.

Every row runs three ways:

* **serial**  -- the plain compiled engine (``explore_jobs`` unset);
* **jobs=1**  -- ``explore_jobs=1``, which must take the serial path;
* **jobs=N**  -- ``explore_jobs=max(2, cpu_count)``, the sharded path
  (forced >= 2 so sharding engages even on one core).

Hard gates:

* **Bit-identical answers** on every row, always: sharded result sets /
  verdicts must equal serial exactly (merges are order-independent).
* **``jobs=1`` within 5%** of serial on the row aggregate, always: the
  knob must be free when it is off.
* **Deep rows >= 1.8x** (serial >= 1 s), *only on 2+-core runners*: on a
  single core the sharded run cannot beat serial, so the speedup is
  reported but not gated.

Run modes::

    python benchmarks/bench_e15_parallel.py            # full suite
    python benchmarks/bench_e15_parallel.py --quick    # CI-sized suite
    pytest benchmarks/bench_e15_parallel.py
    REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e15_parallel.py
"""

from __future__ import annotations

import gc
import json
import os
import pathlib
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from conftest import RESULTS_DIR, emit_table

from repro.core import parallel
from repro.core.contract import is_sc_result
from repro.core.dpor import sc_results_dpor
from repro.core.drf0 import check_program
from repro.core.execution import Result
from repro.core.sc import ExplorationConfig, sc_results
from repro.litmus.catalog import by_name
from repro.machine.generator import GeneratorConfig, random_program

JSON_PATH = RESULTS_DIR / "BENCH_e15_parallel.json"

#: Rows at least this much serial time are "deep" and carry the speedup gate.
DEEP_ROW_S = 1.0
DEEP_ROW_SPEEDUP = 1.8
JOBS1_TOLERANCE = 0.05


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _jobs() -> int:
    return max(2, os.cpu_count() or 1)


def _time(fn: Callable[[], object]) -> Tuple[float, object]:
    """Best-of wall-clock time, adapted to the row's size.

    Multi-second rows are measured once (a best-of would double a
    double-digit-seconds suite) and are excluded from the 5% jobs=1
    gate -- a single measurement of a 10 s row routinely wobbles more
    than 5% from allocator and scheduler noise alone.  Fast rows get
    the E14-style adaptive best-of, which is stable enough to gate.
    """
    gc.collect()
    start = time.perf_counter()
    value = fn()
    best = time.perf_counter() - start
    if best > 2.0:
        return best, value
    if best < 0.05:
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    if best < 0.001:
        repeats = min(700, int(0.1 / max(best, 1e-6)) + 1)
    else:
        repeats = 4 if best < 0.05 else 2
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _workloads(quick: bool) -> List[Tuple[str, str, Callable]]:
    """(name, mode, factory) rows.  The factory takes an optional
    ``explore_jobs`` and returns the row's observable answer."""
    rows: List[Tuple[str, str, Callable]] = []

    def results_row(name):
        program = by_name(name).program

        def run(jobs=None):
            cfg = ExplorationConfig() if jobs is None else ExplorationConfig(
                explore_jobs=jobs
            )
            return sc_results(program, cfg)

        return (name, "results", run)

    rows.append(results_row("SB"))
    rows.append(results_row("MP+sync"))

    # Guided membership over a spin-pumped hardware-shaped result.
    mp = by_name("MP+sync").program
    pumped = Result(
        reads=((), (1, 1, 0, 1)), final_memory=(("flag", 0), ("x", 1))
    )
    rows.append(
        (
            "MP+sync/pumped",
            "member",
            lambda jobs=None: is_sc_result(
                mp, pumped, **({} if jobs is None else {"explore_jobs": jobs})
            ),
        )
    )

    gen33 = random_program(
        33, GeneratorConfig(max_threads=3, max_ops_per_thread=7)
    )
    rows.append(
        (
            "gen33",
            "dpor",
            lambda jobs=None: sc_results_dpor(
                gen33,
                config=(
                    ExplorationConfig()
                    if jobs is None
                    else ExplorationConfig(explore_jobs=jobs)
                ),
            ),
        )
    )

    gen5 = random_program(
        5, GeneratorConfig(max_threads=4, max_ops_per_thread=5)
    )
    rows.append(
        (
            "gen5",
            "drf0",
            lambda jobs=None: check_program(
                gen5,
                config=(
                    ExplorationConfig()
                    if jobs is None
                    else ExplorationConfig(explore_jobs=jobs)
                ),
            ).obeys,
        )
    )

    if not quick:
        # Deep rows: serial >= 1 s, where the speedup gate has teeth.
        gen37 = random_program(
            37, GeneratorConfig(max_threads=3, max_ops_per_thread=12)
        )
        deep_caps = dict(max_ops=800, max_states=20_000_000)
        rows.append(
            (
                "gen37",
                "dpor-deep",
                lambda jobs=None: sc_results_dpor(
                    gen37,
                    config=(
                        ExplorationConfig(**deep_caps)
                        if jobs is None
                        else ExplorationConfig(explore_jobs=jobs, **deep_caps)
                    ),
                ),
            )
        )
        # A DRF0-obeying deep program: racy ones exit at the first race,
        # so only race-free rows exercise the full sharded enumeration.
        gen40 = random_program(
            40, GeneratorConfig(max_threads=4, max_ops_per_thread=6)
        )
        rows.append(
            (
                "gen40",
                "drf0-deep",
                lambda jobs=None: check_program(
                    gen40,
                    config=(
                        ExplorationConfig(**deep_caps)
                        if jobs is None
                        else ExplorationConfig(explore_jobs=jobs, **deep_caps)
                    ),
                ).obeys,
            )
        )
    return rows


def run_benchmark(quick: Optional[bool] = None) -> Dict[str, object]:
    if quick is None:
        quick = _quick()
    jobs = _jobs()
    multicore = (os.cpu_count() or 1) >= 2
    rows: List[Dict[str, object]] = []

    for name, mode, factory in _workloads(quick):
        serial_s, serial_out = _time(lambda: factory())
        jobs1_s, jobs1_out = _time(lambda: factory(jobs=1))
        jobsn_s, jobsn_out = _time(lambda: factory(jobs=jobs))
        sstats = parallel.LAST_SHARD_STATS
        # Gate: merged sharded output bit-identical to serial, per row.
        assert serial_out == jobs1_out, f"{name}/{mode}: jobs=1 diverged"
        assert serial_out == jobsn_out, (
            f"{name}/{mode}: sharded answer differs from serial"
        )
        rows.append(
            {
                "workload": name,
                "mode": mode,
                "serial_s": serial_s,
                "jobs1_s": jobs1_s,
                "jobsn_s": jobsn_s,
                "speedup": serial_s / jobsn_s if jobsn_s else float("inf"),
                "deep": serial_s >= DEEP_ROW_S,
                "shards": sstats.shards if sstats else 0,
                "steals": sstats.steals if sstats else 0,
                "shard_states": sstats.total_shard_states if sstats else 0,
            }
        )

    total_serial = sum(r["serial_s"] for r in rows)
    total_jobs1 = sum(r["jobs1_s"] for r in rows)
    total_jobsn = sum(r["jobsn_s"] for r in rows)
    # The jobs=1 gate aggregates only best-of-measured rows; see _time.
    gated = [r for r in rows if r["serial_s"] <= 2.0]
    gated_serial = sum(r["serial_s"] for r in gated)
    gated_jobs1 = sum(r["jobs1_s"] for r in gated)
    aggregate = {
        "serial_s": total_serial,
        "jobs1_s": total_jobs1,
        "jobsn_s": total_jobsn,
        "jobs1_overhead": (
            gated_jobs1 / gated_serial - 1.0 if gated_serial else 0.0
        ),
        "speedup": total_serial / total_jobsn if total_jobsn else float("inf"),
        "jobs": jobs,
        "cpus": os.cpu_count() or 1,
    }

    emit_table(
        "E15",
        f"intra-cell parallel exploration, jobs={jobs} on "
        f"{aggregate['cpus']} cpu(s)" + (" (quick)" if quick else ""),
        [
            "workload", "mode", "serial (s)", "jobs=1 (s)",
            f"jobs={jobs} (s)", "speedup", "shards", "steals", "shard st",
        ],
        [
            [
                r["workload"],
                r["mode"] + ("*" if r["deep"] else ""),
                f"{r['serial_s']:.4f}",
                f"{r['jobs1_s']:.4f}",
                f"{r['jobsn_s']:.4f}",
                f"{r['speedup']:.2f}x",
                str(r["shards"]),
                str(r["steals"]),
                str(r["shard_states"]),
            ]
            for r in rows
        ]
        + [
            [
                "TOTAL",
                "overall",
                f"{total_serial:.4f}",
                f"{total_jobs1:.4f}",
                f"{total_jobsn:.4f}",
                f"{aggregate['speedup']:.2f}x",
                "-",
                "-",
                "-",
            ]
        ],
        notes=(
            "Every row asserts bit-identical answers across serial / "
            "jobs=1 / sharded.  jobs=1 must stay within 5% of serial.  "
            "Deep rows (*) carry a >= 1.8x gate on 2+-core runners; on "
            "one core the speedup is report-only."
        ),
    )

    # Gate: explore_jobs=1 is the serial path; the knob must be free.
    assert aggregate["jobs1_overhead"] <= JOBS1_TOLERANCE, (
        f"explore_jobs=1 costs {aggregate['jobs1_overhead']:.1%} over "
        f"serial (budget {JOBS1_TOLERANCE:.0%})"
    )

    # Gate: deep rows must scale -- but only where there are cores.
    deep_rows = [r for r in rows if r["deep"]]
    if multicore:
        slow = [r for r in deep_rows if r["speedup"] < DEEP_ROW_SPEEDUP]
        assert not slow, (
            f"deep rows under {DEEP_ROW_SPEEDUP}x on a "
            f"{aggregate['cpus']}-core runner: " + ", ".join(
                f"{r['workload']}/{r['mode']} ({r['speedup']:.2f}x)"
                for r in slow
            )
        )
    elif deep_rows:
        print(
            "single-core runner: deep-row speedup gate skipped "
            "(report-only): " + ", ".join(
                f"{r['workload']} {r['speedup']:.2f}x" for r in deep_rows
            )
        )

    report = {"quick": quick, "rows": rows, "aggregate": aggregate}
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")
    return report


def test_parallel_benchmark():
    """Pytest entry point (quick when REPRO_BENCH_QUICK is set)."""
    run_benchmark()


if __name__ == "__main__":
    run_benchmark(quick="--quick" in sys.argv[1:])
