"""E14 -- the compiled execution engine, three ways against its ancestors.

E10 ended with a regression: the in-place do/undo engine *lost to the
frozen legacy snapshot explorers* on small DPOR/contract/DRF0 rows --
exactly the litmus-sized runs every Definition-2 verdict bottoms out in.
:mod:`repro.core.compile` fixes that by compiling each program once into
specialized step closures over packed int state.

This benchmark times all three generations on the E10 grid plus larger
generated rows:

* **legacy** -- the pre-E10 snapshot explorers (:mod:`repro.core._legacy`);
* **interp** -- the interpreted :class:`~repro.core.engine_state.EngineState`
  (forced via :func:`~repro.core.compile.interpreted_engine`);
* **compiled** -- the default :class:`~repro.core.compile.CompiledEngine`.

Every row asserts **bit-identical observable answers** across all three
(result sets, ``complete`` flags, DRF0 verdicts) and, between the two
engine generations, identical exploration counters -- the packed keys
must merge/cut exactly the same nodes the nested keys do.

Hard gates (the point of the E14 change):

* **No row slower than legacy.**  The compiled engine must win or tie on
  *every* (workload, mode) row -- small litmus rows included; that was
  the E10 regression.
* **Large rows >= 2.5x.**  Rows where legacy takes >= 50 ms must show the
  compiled engine at >= 2.5x.
* **Baseline regression.**  The aggregate compiled speedup is compared
  against the checked-in ``BENCH_e14_baseline.json`` and the run fails
  when it regresses by more than 25% (speedup ratios are
  self-normalizing across machines: both sides run in-process).

Run modes::

    python benchmarks/bench_e14_compiled.py            # full suite
    python benchmarks/bench_e14_compiled.py --quick    # CI-sized suite
    pytest benchmarks/bench_e14_compiled.py
    REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e14_compiled.py
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from conftest import RESULTS_DIR, emit_table

from repro.core._legacy import (
    legacy_check_program,
    legacy_explore,
    legacy_explore_dpor,
    legacy_is_sc_result,
)
from repro.core.compile import interpreted_engine
from repro.core.contract import is_sc_result
from repro.core.dpor import explore_dpor
from repro.core.drf0 import check_program
from repro.core.engine_state import ExplorerStats
from repro.core.sc import ExplorationConfig, explore, sc_results
from repro.litmus.catalog import by_name
from repro.machine.generator import GeneratorConfig, random_program
from repro.machine.program import Program

JSON_PATH = RESULTS_DIR / "BENCH_e14_compiled.json"
BASELINE_PATH = RESULTS_DIR / "BENCH_e14_baseline.json"

REGRESSION_TOLERANCE = 0.25
#: Rows at least this much legacy time are "large" and must show >= 2.5x.
LARGE_ROW_S = 0.05
LARGE_ROW_SPEEDUP = 2.5


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _workloads(quick: bool) -> List[Tuple[str, Program]]:
    """The E10 grid plus deeper generated rows where depth costs bite."""
    names = ["SB", "MP", "LB", "2+2W", "WRC", "IRIW"]
    programs = [(name, by_name(name).program) for name in names]
    if quick:
        gen_cfg = GeneratorConfig(max_threads=3, max_ops_per_thread=4)
        seeds = [(24, gen_cfg)]
    else:
        gen_cfg = GeneratorConfig(max_threads=4, max_ops_per_thread=5)
        deep_cfg = GeneratorConfig(max_threads=3, max_ops_per_thread=7)
        seeds = [(5, gen_cfg), (7, gen_cfg), (33, deep_cfg)]
    for seed, cfg in seeds:
        program = random_program(seed, cfg)
        if program.num_procs >= 3:
            programs.append((f"gen{seed}", program))
    return programs


def _time(fn: Callable[[], object]) -> Tuple[float, object]:
    """Best-of-N wall-clock time with N adapted to the row's size.

    Sub-millisecond rows get enough repeats that the best-of is a stable
    floor (the no-row-slower gate must not trip on timer noise); big rows
    get few (their relative noise is already small).  The first call
    additionally warms per-program caches (closure compilation, program
    metadata) out of the reported time.
    """
    start = time.perf_counter()
    value = fn()
    best = time.perf_counter() - start
    if best < 0.05:
        # Re-measure before choosing the repeat count: the first call may
        # have paid one-time per-program costs (closure compilation, meta
        # caches) that would otherwise make a micro-row look like a big one
        # and leave it with a uselessly shallow best-of.
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    if best < 0.001:
        # ~100 ms budget: micro-rows need a deep best-of to hit their floor.
        repeats = min(700, int(0.1 / max(best, 1e-6)) + 1)
    else:
        repeats = 4 if best < 0.05 else 2
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _bench_modes(name: str, program: Program) -> List[Dict[str, object]]:
    """Time every explorer generation on one program, asserting identity."""
    rows: List[Dict[str, object]] = []

    def row(mode, legacy_s, interp_s, compiled_s, stats: Optional[ExplorerStats]):
        rows.append(
            {
                "workload": name,
                "mode": mode,
                "legacy_s": legacy_s,
                "interp_s": interp_s,
                "compiled_s": compiled_s,
                "speedup_vs_legacy": (
                    legacy_s / compiled_s if compiled_s else float("inf")
                ),
                "speedup_vs_interp": (
                    interp_s / compiled_s if compiled_s else float("inf")
                ),
                "stats": stats.as_dict() if stats is not None else None,
            }
        )

    # Exploration modes: full enumeration, results-only streaming, dedup.
    for mode, cfg in (
        ("naive", ExplorationConfig(dedup=False)),
        ("results", ExplorationConfig(dedup=False, collect_executions=False)),
        ("dedup", ExplorationConfig(dedup=True)),
    ):
        legacy_s, legacy_out = _time(lambda: legacy_explore(program, cfg))
        compiled_s, compiled_out = _time(lambda: explore(program, cfg))
        with interpreted_engine():
            interp_s, interp_out = _time(lambda: explore(program, cfg))
        assert compiled_out.results == interp_out.results == legacy_out.results, (
            f"{name}/{mode}: result sets differ"
        )
        assert (
            compiled_out.complete == interp_out.complete == legacy_out.complete
        )
        assert compiled_out.executions == interp_out.executions, (
            f"{name}/{mode}: executions not bit-identical across engines"
        )
        assert compiled_out.stats.states == interp_out.stats.states, (
            f"{name}/{mode}: packed keys changed the node count"
        )
        row(mode, legacy_s, interp_s, compiled_s, compiled_out.stats)

    # DPOR representative enumeration.  Stats are created inside the timed
    # callable so best-of repeats don't accumulate into one counter.
    def dpor_with_stats():
        st = ExplorerStats()
        return explore_dpor(program, stats=st), st

    legacy_s, legacy_execs = _time(lambda: legacy_explore_dpor(program))
    compiled_s, (compiled_execs, stats) = _time(dpor_with_stats)
    with interpreted_engine():
        interp_s, interp_execs = _time(lambda: explore_dpor(program))
    assert compiled_execs == interp_execs, f"{name}: DPOR traces differ"
    assert {e.result() for e in compiled_execs} == {
        e.result() for e in legacy_execs
    }, f"{name}: DPOR result sets differ"
    row("dpor", legacy_s, interp_s, compiled_s, stats)

    # DRF0 verdict over all interleavings.
    legacy_s, legacy_report = _time(lambda: legacy_check_program(program))
    compiled_s, compiled_report = _time(lambda: check_program(program))
    with interpreted_engine():
        interp_s, interp_report = _time(lambda: check_program(program))
    assert (
        compiled_report.obeys == interp_report.obeys == legacy_report.obeys
    ), f"{name}: DRF0 verdicts differ"
    assert compiled_report.race == interp_report.race
    assert compiled_report.witness == interp_report.witness
    row("drf0", legacy_s, interp_s, compiled_s, compiled_report.stats)

    # Guided SC-membership search over the program's own SC set.
    results = sorted(sc_results(program), key=repr)[:4]

    def judge(fn):
        return [fn(program, r) for r in results]

    def contract_with_stats():
        st = ExplorerStats()
        return [is_sc_result(program, r, stats=st) for r in results], st

    legacy_s, legacy_verdicts = _time(lambda: judge(legacy_is_sc_result))
    compiled_s, (compiled_verdicts, stats) = _time(contract_with_stats)
    with interpreted_engine():
        interp_s, interp_verdicts = _time(lambda: judge(is_sc_result))
    assert (
        compiled_verdicts == interp_verdicts == legacy_verdicts
        == [True] * len(results)
    )
    row("contract", legacy_s, interp_s, compiled_s, stats)
    return rows


def _aggregate(rows: List[Dict[str, object]]) -> Dict[str, Dict[str, float]]:
    out: Dict[str, Dict[str, float]] = {}
    modes = ["naive", "results", "dedup", "dpor", "drf0", "contract", "overall"]
    for scope in modes:
        scoped = [r for r in rows if scope == "overall" or r["mode"] == scope]
        legacy_s = sum(r["legacy_s"] for r in scoped)
        interp_s = sum(r["interp_s"] for r in scoped)
        compiled_s = sum(r["compiled_s"] for r in scoped)
        states = sum(r["stats"]["states"] for r in scoped if r["stats"])
        out[scope] = {
            "legacy_s": legacy_s,
            "interp_s": interp_s,
            "compiled_s": compiled_s,
            "speedup_vs_legacy": (
                legacy_s / compiled_s if compiled_s else float("inf")
            ),
            "speedup_vs_interp": (
                interp_s / compiled_s if compiled_s else float("inf")
            ),
            "compiled_states_per_s": (
                states / compiled_s if compiled_s else 0.0
            ),
        }
    return out


def run_benchmark(quick: Optional[bool] = None) -> Dict[str, object]:
    if quick is None:
        quick = _quick()
    rows: List[Dict[str, object]] = []
    for name, program in _workloads(quick):
        rows.extend(_bench_modes(name, program))
    aggregate = _aggregate(rows)

    def fmt_stats(r):
        stats = r["stats"]
        if not stats:
            return "-"
        per_sec = stats["states"] / r["compiled_s"] if r["compiled_s"] else 0.0
        return f"{stats['states']}st {per_sec:,.0f}st/s"

    emit_table(
        "E14",
        "compiled engine vs interpreted engine vs legacy snapshot explorers"
        + (" (quick)" if quick else ""),
        [
            "workload", "mode", "legacy (s)", "interp (s)", "compiled (s)",
            "vs legacy", "vs interp", "compiled stats",
        ],
        [
            [
                r["workload"],
                r["mode"],
                f"{r['legacy_s']:.4f}",
                f"{r['interp_s']:.4f}",
                f"{r['compiled_s']:.4f}",
                f"{r['speedup_vs_legacy']:.2f}x",
                f"{r['speedup_vs_interp']:.2f}x",
                fmt_stats(r),
            ]
            for r in rows
        ]
        + [
            [
                "TOTAL",
                scope,
                f"{agg['legacy_s']:.4f}",
                f"{agg['interp_s']:.4f}",
                f"{agg['compiled_s']:.4f}",
                f"{agg['speedup_vs_legacy']:.2f}x",
                f"{agg['speedup_vs_interp']:.2f}x",
                f"{agg['compiled_states_per_s']:,.0f}st/s",
            ]
            for scope, agg in aggregate.items()
        ],
        notes=(
            "Every row asserts bit-identical result sets / executions / "
            "complete flags / DRF0 verdicts across all three generations, "
            "and identical node counts between the two engines.  Gates: no "
            "row slower than legacy; large rows (legacy >= 50 ms) >= 2.5x."
        ),
    )

    # Gate 1: the E10 regression must stay fixed -- no row loses to legacy.
    losers = [
        r for r in rows if r["speedup_vs_legacy"] < 1.0
    ]
    assert not losers, "compiled engine slower than legacy on: " + ", ".join(
        f"{r['workload']}/{r['mode']} ({r['speedup_vs_legacy']:.2f}x)"
        for r in losers
    )

    # Gate 2: large rows must show the compiled engine's real headroom.
    small_large = [
        r
        for r in rows
        if r["legacy_s"] >= LARGE_ROW_S
        and r["speedup_vs_legacy"] < LARGE_ROW_SPEEDUP
    ]
    assert not small_large, (
        f"large rows under {LARGE_ROW_SPEEDUP}x: " + ", ".join(
            f"{r['workload']}/{r['mode']} ({r['speedup_vs_legacy']:.2f}x)"
            for r in small_large
        )
    )

    report = {"quick": quick, "rows": rows, "aggregate": aggregate}
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")

    # Gate 3: regression vs the checked-in baseline (per suite variant).
    variant = "quick" if quick else "full"
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base_agg = baseline.get(variant)
        if not isinstance(base_agg, dict):
            print(f"baseline has no '{variant}' aggregate; gate skipped")
        else:
            base = base_agg["overall"]["speedup_vs_legacy"]
            now = aggregate["overall"]["speedup_vs_legacy"]
            floor = base * (1.0 - REGRESSION_TOLERANCE)
            print(
                f"regression gate ({variant}): compiled speedup {now:.2f}x "
                f"vs baseline {base:.2f}x (floor {floor:.2f}x)"
            )
            assert now >= floor, (
                f"compiled-engine speedup regressed: {now:.2f}x is more "
                f"than {REGRESSION_TOLERANCE:.0%} below the baseline "
                f"{base:.2f}x"
            )
    else:
        print(f"no baseline at {BASELINE_PATH}; gate skipped")
    return report


def test_compiled_benchmark():
    """Pytest entry point (quick when REPRO_BENCH_QUICK is set)."""
    run_benchmark()


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    run_benchmark(quick=quick)
