"""E18 -- the incremental axiomatic solver vs the legacy enumerator.

The legacy backend (:mod:`repro.axiomatic.candidates`) materializes every
(rf, co) combination -- factorial in the writes per location -- and only
then filters by value resolution, atomicity, and the model axioms.  The
solver (:mod:`repro.axiomatic.solver`) extends partial assignments one
decision at a time under incremental cycle detection and propagation, so
inconsistent subtrees die at their first bad edge.

Each row times one workload through **all four models** (SC, COHERENCE,
TSO, WO-DRF0) on both backends and asserts the result sets are
**bit-identical per model** -- the same equivalence the test suite and
the ``repro diff`` campaign check, measured here at benchmark scale.
WO-DRF0's operational DRF0 verdict is primed outside the timed region so
both backends are charged only for the axiomatic work.

Hard gates (the point of the E18 change):

* **No row slower.**  The solver must win or tie on *every* workload --
  litmus-sized rows included, where the enumerator's cross product is
  tiny and the solver's machinery could plausibly lose.
* **Deep rows >= 10x.**  Rows marked deep (>= 6 writes to one location,
  where the co permutation count explodes) must show >= 10x.
* **Baseline regression.**  The aggregate speedup is compared against the
  checked-in ``BENCH_e18_baseline.json`` and the run fails when it
  regresses by more than 25% (speedup ratios are self-normalizing across
  machines: both sides run in-process).

The full suite then runs a differential campaign
(:func:`repro.verify.diff.diff_campaign`) over 200 generated programs --
solver vs enumerator vs operational explorer vs hardware simulator --
and asserts zero disagreements; quick mode runs a 25-program smoke
campaign of the same shape.

Run modes::

    python benchmarks/bench_e18_axiomatic.py            # full suite
    python benchmarks/bench_e18_axiomatic.py --quick    # CI-sized suite
    pytest benchmarks/bench_e18_axiomatic.py
    REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e18_axiomatic.py
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from typing import Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from conftest import RESULTS_DIR, emit_table

from repro.axiomatic import (
    CoherenceModel,
    SCModel,
    TSOModel,
    WeakOrderingDRF,
    allowed_results,
)
from repro.litmus.catalog import by_name
from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.program import Program
from repro.verify.diff import diff_campaign

JSON_PATH = RESULTS_DIR / "BENCH_e18_axiomatic.json"
BASELINE_PATH = RESULTS_DIR / "BENCH_e18_baseline.json"

REGRESSION_TOLERANCE = 0.25
#: Rows flagged deep (co-permutation blowup) must show at least this.
DEEP_ROW_SPEEDUP = 10.0


def _quick() -> bool:
    return os.environ.get("REPRO_BENCH_QUICK", "") not in ("", "0")


def _deep_program(writes: int) -> Program:
    """``writes`` stores to one location across 3 threads, plus 2 loads.

    One hot location is the enumerator's worst case: its candidate count
    carries a ``writes!`` coherence-permutation factor, while the solver
    prunes each coherence prefix the moment it contradicts an axiom.
    """
    threads = [ThreadBuilder() for _ in range(3)]
    for i in range(writes):
        threads[i % 3].store("x", i + 1)
    threads[0].load("r0", "x")
    threads[2].load("r1", "x")
    return build_program(threads, name=f"deep{writes}")


def _workloads(quick: bool) -> List[Tuple[str, Program, bool]]:
    """(name, program, deep) rows: the litmus grid plus deep-co rows."""
    names = ["SB", "SB+fence", "MP", "LB", "2+2W", "CoRR", "TAS"]
    rows: List[Tuple[str, Program, bool]] = [
        (name, by_name(name).program, False) for name in names
    ]
    rows.append(("deep6", _deep_program(6), True))
    if not quick:
        rows.append(("deep7", _deep_program(7), True))
    return rows


def _time(fn: Callable[[], object]) -> Tuple[float, object]:
    """Best-of-N wall clock, N adapted to the row's size.

    Micro rows get a deep best-of so the no-row-slower gate cannot trip
    on timer noise; multi-second rows (the deep enumerator side) run
    once -- their relative noise is already small.
    """
    start = time.perf_counter()
    value = fn()
    best = time.perf_counter() - start
    if best > 2.0:
        return best, value
    if best < 0.001:
        repeats = min(500, int(0.1 / max(best, 1e-6)) + 1)
    else:
        repeats = 4 if best < 0.05 else 2
    for _ in range(repeats):
        start = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - start)
    return best, value


def _bench_row(name: str, program: Program, deep: bool) -> Dict[str, object]:
    """Time all four models through both backends on one program."""
    wo = WeakOrderingDRF()
    drf0 = wo.program_is_drf0(program)  # primed outside the timed region
    models = [SCModel(), CoherenceModel(), TSOModel(), wo]

    def run(backend: str) -> Dict[str, frozenset]:
        return {
            model.name: allowed_results(program, model, backend=backend)
            for model in models
        }

    solver_s, solver_sets = _time(lambda: run("solver"))
    enum_s, enum_sets = _time(lambda: run("enumerator"))
    for model in models:
        assert solver_sets[model.name] == enum_sets[model.name], (
            f"{name} under {model.name}: backends disagree "
            f"({len(solver_sets[model.name])} vs "
            f"{len(enum_sets[model.name])} results)"
        )
    return {
        "workload": name,
        "deep": deep,
        "drf0": drf0,
        "enum_s": enum_s,
        "solver_s": solver_s,
        "speedup": enum_s / solver_s if solver_s else float("inf"),
        "results": {m.name: len(solver_sets[m.name]) for m in models},
    }


def run_benchmark(quick: Optional[bool] = None) -> Dict[str, object]:
    if quick is None:
        quick = _quick()
    rows = [
        _bench_row(name, program, deep)
        for name, program, deep in _workloads(quick)
    ]

    enum_total = sum(r["enum_s"] for r in rows)
    solver_total = sum(r["solver_s"] for r in rows)
    aggregate = {
        "enum_s": enum_total,
        "solver_s": solver_total,
        "speedup": enum_total / solver_total if solver_total else float("inf"),
    }

    def fmt_results(r):
        return "/".join(
            str(r["results"][m])
            for m in ("SC", "COHERENCE", "TSO", "WO-DRF0")
        )

    emit_table(
        "E18",
        "incremental axiomatic solver vs legacy enumerator"
        + (" (quick)" if quick else ""),
        [
            "workload", "deep", "drf0", "enum (s)", "solver (s)",
            "speedup", "results SC/COH/TSO/WO",
        ],
        [
            [
                r["workload"],
                "yes" if r["deep"] else "-",
                "yes" if r["drf0"] else "racy",
                f"{r['enum_s']:.4f}",
                f"{r['solver_s']:.4f}",
                f"{r['speedup']:.2f}x",
                fmt_results(r),
            ]
            for r in rows
        ]
        + [
            [
                "TOTAL", "-", "-",
                f"{aggregate['enum_s']:.4f}",
                f"{aggregate['solver_s']:.4f}",
                f"{aggregate['speedup']:.2f}x",
                "-",
            ]
        ],
        notes=(
            "Each row times all four models through both backends and "
            "asserts bit-identical result sets per model.  Gates: solver "
            f"slower on no row; deep rows >= {DEEP_ROW_SPEEDUP:.0f}x."
        ),
    )

    # Gate 1: the solver must win or tie everywhere, micro rows included.
    losers = [r for r in rows if r["speedup"] < 1.0]
    assert not losers, "solver slower than enumerator on: " + ", ".join(
        f"{r['workload']} ({r['speedup']:.2f}x)" for r in losers
    )

    # Gate 2: deep rows are where the pruning must actually pay.
    shallow = [
        r for r in rows if r["deep"] and r["speedup"] < DEEP_ROW_SPEEDUP
    ]
    assert not shallow, (
        f"deep rows under {DEEP_ROW_SPEEDUP:.0f}x: " + ", ".join(
            f"{r['workload']} ({r['speedup']:.2f}x)" for r in shallow
        )
    )

    # Differential campaign: the solver's correctness contract at scale.
    programs = 25 if quick else 200
    start = time.perf_counter()
    report = diff_campaign(range(programs))
    diff_s = time.perf_counter() - start
    print(
        f"diff campaign: {report.programs_run} programs, "
        f"{report.comparisons} comparisons, {report.hardware_runs} "
        f"hardware runs in {diff_s:.1f}s"
    )
    assert report.ok, (
        f"differential campaign found {len(report.disagreements)} "
        "disagreements: " + "; ".join(
            f"seed {d.seed} [{d.kind}] {d.detail}"
            for d in report.disagreements
        )
    )

    out = {
        "quick": quick,
        "rows": rows,
        "aggregate": aggregate,
        "diff_campaign": {
            "programs_run": report.programs_run,
            "comparisons": report.comparisons,
            "hardware_runs": report.hardware_runs,
            "seconds": diff_s,
            "ok": report.ok,
        },
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    JSON_PATH.write_text(json.dumps(out, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")

    # Gate 3: regression vs the checked-in baseline (per suite variant).
    variant = "quick" if quick else "full"
    if BASELINE_PATH.exists():
        baseline = json.loads(BASELINE_PATH.read_text())
        base_agg = baseline.get(variant)
        if not isinstance(base_agg, dict):
            print(f"baseline has no '{variant}' aggregate; gate skipped")
        else:
            base = base_agg["speedup"]
            now = aggregate["speedup"]
            floor = base * (1.0 - REGRESSION_TOLERANCE)
            print(
                f"regression gate ({variant}): solver speedup {now:.2f}x "
                f"vs baseline {base:.2f}x (floor {floor:.2f}x)"
            )
            assert now >= floor, (
                f"solver speedup regressed: {now:.2f}x is more than "
                f"{REGRESSION_TOLERANCE:.0%} below the baseline "
                f"{base:.2f}x"
            )
    else:
        print(f"no baseline at {BASELINE_PATH}; gate skipped")
    return out


def test_axiomatic_benchmark():
    """Pytest entry point (quick when REPRO_BENCH_QUICK is set)."""
    run_benchmark()


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    run_benchmark(quick=quick)
