"""E2 -- Figure 2: the DRF0 example and counter-example.

Checks the reconstructed Figure-2 executions with both race detectors and
the litmus catalog's programs with the exhaustive Definition-3 checker,
timing the checkers themselves (race detection is the practical cost of
the software side of the contract).
"""

from conftest import emit_table

from repro.core.drf0 import (
    check_program,
    races_in_execution,
    races_in_execution_vc,
)
from repro.litmus import all_tests, figure2a_execution, figure2b_execution


def figure2_rows():
    rows = []
    for name, execution in (
        ("Figure 2(a)", figure2a_execution()),
        ("Figure 2(b)", figure2b_execution()),
    ):
        races = races_in_execution(execution)
        rows.append(
            (
                name,
                len(execution.ops),
                len(races),
                "obeys DRF0" if not races else "violates DRF0",
            )
        )
    return rows


def catalog_rows():
    rows = []
    for test in all_tests():
        report = check_program(test.program)
        rows.append(
            (
                test.name,
                "yes" if report.obeys else "no",
                report.executions_checked,
                str(report.race) if report.race else "-",
            )
        )
    return rows


def test_e2_figure2_executions(benchmark):
    rows = benchmark.pedantic(figure2_rows, rounds=3, iterations=1)
    emit_table(
        "E2",
        "Figure 2 -- example (a) and counter-example (b) of DRF0",
        ["execution", "ops", "races", "verdict"],
        rows,
        notes=(
            "Paper caption: (a) all conflicting accesses ordered by\n"
            "happens-before; (b) P0's x accesses race P1's write, and the\n"
            "y writes of P2 and P4 race."
        ),
    )
    verdicts = {r[0]: r[3] for r in rows}
    assert verdicts["Figure 2(a)"] == "obeys DRF0"
    assert verdicts["Figure 2(b)"] == "violates DRF0"


def test_e2_catalog_drf0_verdicts(benchmark):
    rows = benchmark.pedantic(catalog_rows, rounds=1, iterations=1)
    emit_table(
        "E2b",
        "Definition-3 verdicts over the litmus catalog (exhaustive)",
        ["test", "obeys DRF0", "idealized executions checked", "first race"],
        rows,
    )
    by_name = {r[0]: r[1] for r in rows}
    assert by_name["MP+sync"] == "yes" and by_name["SB"] == "no"


def test_e2_vector_clock_detector_speed(benchmark):
    """Throughput of the fast detector on the larger Figure-2a trace."""
    execution = figure2a_execution()
    races = benchmark(races_in_execution_vc, execution)
    assert races == []


def dpor_reduction_rows():
    from repro.core.dpor import check_program_dpor, explore_dpor
    from repro.core.sc import sc_executions

    rows = []
    for test in all_tests():
        if not test.program.is_straight_line():
            continue
        naive = len(sc_executions(test.program))
        reduced = len(explore_dpor(test.program))
        verdict = check_program_dpor(test.program).obeys
        assert verdict == test.drf0
        rows.append((test.name, naive, reduced, f"{naive / reduced:.1f}x"))
    return rows


def test_e2_dpor_reduction(benchmark):
    """Partial-order reduction for the Definition-3 verdict: interleavings
    explored, naive vs DPOR, with identical verdicts."""
    rows = benchmark.pedantic(dpor_reduction_rows, rounds=1, iterations=1)
    emit_table(
        "E2c",
        "Interleavings explored for the DRF0 verdict: naive vs DPOR",
        ["test", "naive interleavings", "DPOR traces", "reduction"],
        rows,
    )
    total_naive = sum(r[1] for r in rows)
    total_dpor = sum(r[2] for r in rows)
    assert total_dpor < total_naive
