"""E9 -- coherence substrates: snooping bus vs directory/network.

Figure 1's framing: "as potential for parallelism is increased, sequential
consistency imposes greater constraints on hardware".  The two coherence
substrates embody the two ends:

* the **atomic snooping bus** ([RuS84]/[ArB86]) serializes everything --
  sequential consistency is nearly free, but every miss from every
  processor shares one medium;
* the **directory over an unordered network** (Section 5.2) scales, but
  makes SC expensive and weak ordering's machinery (counters, reserve
  bits) necessary -- on the bus those conditions hold structurally.

The experiment sweeps processor count on the lock workload and reports
cycles for SC vs the Adve-Hill policy on both substrates, plus the SC/AH
gap: the gap is the paper's argument, and it lives on the network side.
"""

from conftest import emit_table, mean

from repro.hw import AdveHillPolicy, SCPolicy
from repro.sim.system import SystemConfig, run_on_hardware
from repro.workloads import lock_workload

SEEDS = range(8)
PROC_SWEEP = [2, 4, 6]

SUBSTRATES = {
    "snoop-bus": SystemConfig(coherence="snoop", topology="bus"),
    "directory-network": SystemConfig(coherence="directory", topology="network"),
}


def substrate_rows():
    rows = []
    for procs in PROC_SWEEP:
        program = lock_workload(procs, 1)
        for substrate, config in SUBSTRATES.items():
            cells = {}
            for name, factory in (("sc", SCPolicy), ("ah", AdveHillPolicy)):
                cycles = []
                for seed in SEEDS:
                    run = run_on_hardware(program, factory(), config.with_seed(seed))
                    assert run.result.memory_value("count") == procs
                    cycles.append(run.cycles)
                cells[name] = mean(cycles)
            rows.append(
                (
                    procs,
                    substrate,
                    f"{cells['sc']:.0f}",
                    f"{cells['ah']:.0f}",
                    f"{cells['sc'] / cells['ah']:.2f}",
                )
            )
    return rows


def test_e9_substrate_comparison(benchmark):
    rows = benchmark.pedantic(substrate_rows, rounds=1, iterations=1)
    emit_table(
        "E9",
        "Snooping bus vs directory/network: SC cost per substrate",
        ["processors", "substrate", "sc cycles", "adve-hill cycles", "sc/ah"],
        rows,
        notes=(
            "Figure 1's narrative quantified: on the atomic bus, SC costs\n"
            "little over weak ordering (its guarantees are structural); on\n"
            "the unordered network, the SC/AH gap is where the paper's\n"
            "contract earns its performance."
        ),
    )
    # the SC/AH gap on the network exceeds the gap on the bus at scale
    by_key = {(r[0], r[1]): float(r[4]) for r in rows}
    for procs in PROC_SWEEP[1:]:
        assert (
            by_key[(procs, "directory-network")]
            >= by_key[(procs, "snoop-bus")] * 0.95
        )
