"""E8 -- ablations of the Section-5.3 mechanism.

Three design knobs the paper discusses, measured:

1. **Stall vs NACK at a reserved line.**  The paper offers both ("a queue
   of stalled requests ... or a negative ack may be sent").  The stall
   variant can deadlock when two processors reserve lines and then
   synchronize on each other's reserved location (the counters keep each
   other positive); the NACK variant is deadlock-free because a nacked
   request stops being outstanding until its retry.  We count deadlocks
   across seeds on the adversarial-but-DRF0 cross-synchronization program.
2. **Bounded misses while reserved** (``reserved_miss_limit``): the
   paper's fix for a counter that keeps growing behind a reserved line;
   we measure its effect on the contended-release workload.
3. **Network latency sweep**: the new implementation's advantage over
   Definition 1 grows with the cost of globally performing a write.
"""

import pytest
from conftest import emit_table, mean

from repro.core.contract import is_sc_result
from repro.core.types import Condition
from repro.hw import AdveHillPolicy, Definition1Policy
from repro.machine.dsl import ThreadBuilder, build_program
from repro.sim.system import SimulationDeadlock, SystemConfig, run_on_hardware
from repro.workloads import contended_release_workload, producer_consumer_workload


def cross_sync_program():
    """DRF0-clean Dekker-with-prior-writes: reserves two lines crosswise."""
    warm_a = ThreadBuilder().load("w", "b").unset("ga")
    warm_b = ThreadBuilder().load("w", "a").unset("gb")
    p0 = (
        ThreadBuilder()
        .label("g").test_and_set("rg", "ga")
        .branch_if(Condition.NE, "rg", 0, "g")
        .store("a", 1).unset("s").test_and_set("r0", "t")
    )
    p1 = (
        ThreadBuilder()
        .label("g").test_and_set("rg", "gb")
        .branch_if(Condition.NE, "rg", 0, "g")
        .store("b", 1).unset("t").test_and_set("r1", "s")
    )
    return build_program(
        [p0, p1, warm_a, warm_b],
        initial_memory={"ga": 1, "gb": 1, "s": 1, "t": 1},
        name="cross-sync",
    )


def stall_vs_nack_rows():
    program = cross_sync_program()
    rows = []
    for mode, nack in (("stall (queue)", False), ("nack (retry)", True)):
        deadlocks = 0
        non_sc = 0
        completed_cycles = []
        for seed in range(25):
            config = SystemConfig(
                seed=seed, net_latency=5, net_jitter=10, remote_sync_nack=nack
            )
            try:
                run = run_on_hardware(program, AdveHillPolicy(), config)
            except SimulationDeadlock:
                deadlocks += 1
                continue
            completed_cycles.append(run.cycles)
            if not is_sc_result(program, run.result):
                non_sc += 1
        rows.append(
            (
                mode,
                f"{deadlocks}/25",
                non_sc,
                f"{mean(completed_cycles):.0f}" if completed_cycles else "-",
            )
        )
    return rows


def test_e8_stall_vs_nack(benchmark):
    rows = benchmark.pedantic(stall_vs_nack_rows, rounds=1, iterations=1)
    emit_table(
        "E8a",
        "Reserved-line refusal variant on the cross-synchronization program",
        ["variant", "deadlocks", "non-SC results", "mean cycles (completed)"],
        rows,
        notes=(
            "Reproduction finding: the paper's queue-until-counter-zero\n"
            "variant deadlocks on this DRF0 program (its deadlock argument\n"
            "does not cover syncs stalled at *remote* reserved lines); the\n"
            "paper's NACK alternative is deadlock-free and contract-clean."
        ),
    )
    by_mode = {r[0]: r for r in rows}
    assert by_mode["stall (queue)"][1] != "0/25"
    assert by_mode["nack (retry)"][1] == "0/25"
    assert by_mode["nack (retry)"][2] == 0


def busy_releaser_program(pre: int = 4, post: int = 10):
    """A releaser that keeps missing after its release.

    P0 writes ``pre`` shared lines (slow global perform: P1 holds copies),
    Unsets the flag, then immediately writes ``post`` fresh lines -- more
    misses that keep its counter positive.  P1 spins on the flag.  This is
    exactly the paper's growing-counter problem: "a subsequent
    synchronization operation awaiting completion of the accesses pending
    before the previous synchronization operation has to wait for the new
    accesses as well".
    """
    p0 = (
        ThreadBuilder()
        .label("g").test_and_set("rg", "go")
        .branch_if(Condition.NE, "rg", 0, "g")
    )
    for i in range(pre):
        p0.store(f"d{i}", i + 1)
    p0.unset("flag")
    for i in range(post):
        p0.store(f"e{i}", i + 1)
    p1 = ThreadBuilder()
    for i in range(pre):
        p1.load("w", f"d{i}")  # warm shared copies: pre-writes need acks
    for i in range(post):
        p1.load("w", f"e{i}")  # post-release writes are slow to GP too
    p1.unset("go")
    p1.label("spin").sync_load("rf", "flag").branch_if(
        Condition.NE, "rf", 0, "spin"
    )
    for i in range(pre):
        p1.load(f"v{i}", f"d{i}")
    return build_program(
        [p0, p1], initial_memory={"flag": 1, "go": 1}, name="busy-releaser"
    )


def miss_limit_rows():
    program = busy_releaser_program(pre=6, post=12)
    rows = []
    for limit in (None, 1, 2, 4):
        sync_done, releaser_done = [], []
        for seed in range(10):
            # Stall mode shows the effect crisply (the stalled sync is
            # released the instant the counter reads zero); this workload
            # synchronizes in one direction only, so it cannot cross-stall.
            # The bus makes bandwidth the bottleneck: unbounded post-release
            # misses serialize on it and keep the counter positive.
            config = SystemConfig(
                seed=seed,
                topology="bus",
                bus_latency=4,
                reserved_miss_limit=limit,
                remote_sync_nack=False,
            )
            run = run_on_hardware(
                program, AdveHillPolicy(drf1_optimized=True), config
            )
            # When does the consumer get through the flag synchronization?
            flag_accesses = [
                a for a in run.raw_accesses[1] if a.location == "flag"
            ]
            sync_done.append(flag_accesses[-1].commit_time)
            releaser_done.append(run.proc_stats[0].halt_time)
        rows.append(
            (
                "unlimited" if limit is None else str(limit),
                f"{mean(sync_done):.0f}",
                f"{mean(releaser_done):.0f}",
            )
        )
    return rows


def test_e8_reserved_miss_limit(benchmark):
    rows = benchmark.pedantic(miss_limit_rows, rounds=1, iterations=1)
    emit_table(
        "E8b",
        "Bounded misses while a line is reserved (busy releaser, bus)",
        ["reserved_miss_limit", "consumer sync completes (mean)",
         "releaser finish (mean)"],
        rows,
        notes=(
            "The paper's growing-counter problem: without a bound, the\n"
            "releaser's post-release misses keep its counter positive and\n"
            "hold the spinning consumer at the reserved flag line; a small\n"
            "limit lets the counter read zero after a bounded number of\n"
            "increments, freeing the consumer sooner."
        ),
    )
    unlimited = float(rows[0][1])
    tightest = float(rows[1][1])
    assert tightest < unlimited


def latency_rows():
    program = producer_consumer_workload(batch_size=10, post_release_work=60)
    rows = []
    for net_latency in (2, 5, 10, 20):
        cells = []
        for factory in (Definition1Policy, AdveHillPolicy):
            cycles = [
                run_on_hardware(
                    program,
                    factory(),
                    SystemConfig(seed=s, net_latency=net_latency),
                ).cycles
                for s in range(8)
            ]
            cells.append(mean(cycles))
        rows.append(
            (
                net_latency,
                f"{cells[0]:.0f}",
                f"{cells[1]:.0f}",
                f"{cells[0] / cells[1]:.2f}",
            )
        )
    return rows


def test_e8_latency_sweep(benchmark):
    rows = benchmark.pedantic(latency_rows, rounds=1, iterations=1)
    emit_table(
        "E8c",
        "Definition 1 vs Section 5.3 as interconnect latency grows",
        ["net latency", "definition1 cycles", "adve-hill cycles",
         "def1/adve-hill"],
        rows,
        notes=(
            "The release-side stall Definition 1 pays scales with the cost\n"
            "of globally performing writes; the advantage of the new\n"
            "implementation grows accordingly."
        ),
    )
    ratios = [float(r[3]) for r in rows]
    assert ratios[-1] >= ratios[0]
