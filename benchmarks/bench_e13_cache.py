"""E13 -- the persistent verdict store: cold vs warm vs shared-worker.

Every verdict in a Definition-2 sweep is a pure function of program
content, so a second sweep against the same ``--cache-dir`` should pay
for *none* of it: SC-membership and DRF0 verdicts warm the in-memory
caches, and stored hardware run summaries fill sweep positions without
touching the simulator.  This experiment measures that on the E5 grid
and **fails** unless the warm run is >= 5x faster than the cold run with
a bit-identical evidence table (the acceptance bar for the store).

Three measurements, all in-process (interpreter startup would otherwise
drown the small grid):

* **cold** -- serial sweep into an empty cache directory;
* **warm** -- the same sweep again, same directory, fresh engine;
* **shared-worker** -- a cold parallel sweep (one worker per CPU) into a
  fresh directory: workers inherit the warm caches by fork, send new
  verdicts back with their results, and the parent flushes them to disk
  mid-run; its verdict table must also be identical.

Output: ``benchmarks/results/E13.txt`` (timing table) and
``benchmarks/results/E13_cache.json`` (timings + store counters).

Run modes::

    python benchmarks/bench_e13_cache.py            # full E5 grid
    python benchmarks/bench_e13_cache.py --quick    # CI-sized grid
    pytest benchmarks/bench_e13_cache.py
    REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e13_cache.py
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from conftest import RESULTS_DIR, emit_table

from repro.hw import POLICY_FACTORIES
from repro.litmus.catalog import by_name
from repro.sim.system import SystemConfig
from repro.verify import VerificationEngine
from repro.workloads import lock_workload

#: The E5 evidence grid (see bench_e5_contract.py / DEFAULT_SWEEP_PROGRAMS).
FULL_PROGRAMS = ("MP+sync", "SB+sync", "TAS", "lock", "SB")
QUICK_PROGRAMS = ("MP+sync", "SB+sync", "SB")
FULL_POLICIES = ("sc", "definition1", "adve-hill", "release-consistency")
QUICK_POLICIES = ("sc", "adve-hill", "release-consistency")


def _programs(names):
    return [
        lock_workload(3, 1) if name == "lock" else by_name(name).program
        for name in names
    ]


def _sweep(programs, factories, seeds, cache_dir, jobs):
    engine = VerificationEngine(jobs=jobs, cache_dir=cache_dir)
    start = time.perf_counter()
    evidence = engine.definition2_sweep(
        programs, factories, SystemConfig(), seeds=range(seeds)
    )
    elapsed = time.perf_counter() - start
    if engine.store is not None:
        engine.store.close()
    return evidence, elapsed, engine


def run(quick: bool = False) -> None:
    names = QUICK_PROGRAMS if quick else FULL_PROGRAMS
    policy_names = QUICK_POLICIES if quick else FULL_POLICIES
    seeds = 10 if quick else 15
    programs = _programs(names)
    factories = {name: POLICY_FACTORIES[name] for name in policy_names}

    with tempfile.TemporaryDirectory() as scratch:
        serial_dir = os.path.join(scratch, "serial")
        parallel_dir = os.path.join(scratch, "parallel")

        reference, _, _ = _sweep(programs, factories, seeds, None, jobs=1)
        cold, cold_s, cold_engine = _sweep(
            programs, factories, seeds, serial_dir, jobs=1
        )
        warm, warm_s, warm_engine = _sweep(
            programs, factories, seeds, serial_dir, jobs=1
        )
        shared, shared_s, shared_engine = _sweep(
            programs, factories, seeds, parallel_dir, jobs=0
        )

        speedup = cold_s / warm_s if warm_s else float("inf")
        grid = f"{len(programs)}x{len(factories)}x{seeds}"
        warm_flushed = (
            warm_engine.store.stats.flushed_sc
            + warm_engine.store.stats.flushed_runs
        )
        rows = [
            (
                "cold (serial, empty dir)", "1", f"{cold_s * 1e3:.0f}",
                "1.0x",
                f"{cold_engine.store.stats.flushed_sc} SC + "
                f"{cold_engine.store.stats.flushed_runs} runs flushed",
            ),
            (
                "warm (same dir)", "1", f"{warm_s * 1e3:.0f}",
                f"{speedup:.1f}x",
                f"{warm_engine.store.stats.runs_reused} runs reused, "
                f"{warm_flushed} flushed",
            ),
            (
                "shared-worker (cold, fork pool)", "cpu",
                f"{shared_s * 1e3:.0f}",
                f"{cold_s / shared_s:.1f}x" if shared_s else "-",
                f"{shared_engine.store.stats.flushed_sc} SC flushed "
                "mid-run by parent",
            ),
        ]
        emit_table(
            "E13",
            f"persistent verdict store on the E5 grid ({grid} cells)",
            ["mode", "jobs", "wall ms", "vs cold", "store activity"],
            rows,
            notes=(
                f"warm speedup {speedup:.1f}x (bar: >= 5x); all verdict "
                "tables bit-identical"
            ),
        )

        RESULTS_DIR.mkdir(exist_ok=True)
        with open(
            RESULTS_DIR / "E13_cache.json", "w", encoding="utf-8"
        ) as fh:
            json.dump(
                {
                    "grid": grid,
                    "quick": quick,
                    "cold_s": cold_s,
                    "warm_s": warm_s,
                    "shared_worker_s": shared_s,
                    "warm_speedup": speedup,
                    "cold_store": cold_engine.store.stats.as_dict(),
                    "warm_store": warm_engine.store.stats.as_dict(),
                    "shared_store": shared_engine.store.stats.as_dict(),
                },
                fh, indent=2, sort_keys=True,
            )
            fh.write("\n")

        assert warm.rows == reference.rows, "store changed a verdict (warm)"
        assert cold.rows == reference.rows, "store changed a verdict (cold)"
        assert shared.rows == reference.rows, (
            "store changed a verdict (parallel)"
        )
        assert warm_engine.store.stats.runs_reused > 0, "no run reuse?"
        assert speedup >= 5.0, (
            f"warm run only {speedup:.1f}x faster than cold (bar: 5x)"
        )


def test_e13_cache() -> None:
    run(quick=bool(os.environ.get("REPRO_BENCH_QUICK")))


if __name__ == "__main__":
    run(quick="--quick" in sys.argv[1:])
