"""Shared helpers for the experiment benchmarks (E1..E8).

Each benchmark regenerates one of the paper's tables/figures.  Tables are
printed to stdout *and* written to ``benchmarks/results/<exp>.txt`` so the
measured numbers survive pytest's output capture and feed EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, List, Sequence

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit_table(
    experiment: str,
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: str = "",
) -> str:
    """Format, print, and persist one experiment table."""
    rows = [list(map(str, row)) for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [f"== {experiment}: {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if notes:
        lines.append(notes)
    text = "\n".join(lines)
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(text + "\n")
    return text


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean."""
    return sum(values) / len(values) if values else 0.0
