"""E5 -- Definition 2 / Appendix B, empirically.

The contract: hardware is weakly ordered w.r.t. DRF0 iff it appears
sequentially consistent to all DRF0 software.  Appendix B proves the
Section-5.1 conditions sufficient; this experiment is the executable
counterpart:

* a suite of DRF0 programs runs on both weakly ordered implementations
  across many nondeterminism seeds; every observed result is checked
  against the exact guided SC-membership oracle;
* the Section-5.1 runtime condition monitor validates every Adve-Hill run;
* the premise is shown necessary: racy programs do exhibit non-SC results
  on the same hardware.

The sweeps run through the parallel verification engine
(:mod:`repro.verify.engine`): ``REPRO_BENCH_JOBS`` sets the worker count
(default: one per CPU), and the shared verdict caches mean a result
observed under several policies is judged against the SC oracle once.
Engine output is bit-for-bit identical to the serial sweeps, so the
assertions below are unchanged from the serial version.
"""

import os

from conftest import emit_table

from repro.core.drf0 import check_program_sampled
from repro.hw import (
    AdveHillPolicy,
    Definition1Policy,
    ReleaseConsistencyPolicy,
    SCPolicy,
)
from repro.litmus.catalog import by_name
from repro.sim.system import SystemConfig
from repro.verify import VerificationEngine
from repro.workloads import (
    barrier_workload,
    lock_workload,
    phase_parallel_workload,
    producer_consumer_workload,
)


def drf0_programs():
    return [
        by_name("MP+sync").program,
        by_name("SB+sync").program,
        by_name("TAS").program,
        lock_workload(3, 1),
        lock_workload(2, 2, ttas=True),
        producer_consumer_workload(batch_size=6),
        barrier_workload(num_procs=3, phases=1),
        phase_parallel_workload(num_procs=3, chunk=2, phases=1),
    ]


def racy_programs():
    return [by_name("SB").program, by_name("SB+half-sync").program]


POLICIES = {
    "sc": SCPolicy,
    "definition1": Definition1Policy,
    "release-consistency": ReleaseConsistencyPolicy,
    "adve-hill": AdveHillPolicy,
    "adve-hill-drf1": lambda: AdveHillPolicy(drf1_optimized=True),
}

SEEDS = range(15)

#: Worker processes for the sweeps; the verdict caches are shared across
#: every row, so repeated results are judged once per campaign.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or (os.cpu_count() or 1)
ENGINE = VerificationEngine(jobs=JOBS)


def contract_rows():
    rows = []
    for program in drf0_programs():
        assert check_program_sampled(program, seeds=range(10)).obeys
        for name, factory in POLICIES.items():
            monitor = name.startswith("adve-hill")
            report = ENGINE.contract_sweep(
                program,
                factory,
                SystemConfig(),
                seeds=SEEDS,
                check_51_conditions=monitor,
            )
            rows.append(
                (
                    program.name,
                    name,
                    report.distinct_results,
                    "yes" if report.appears_sc else "NO",
                    len(report.condition_violations) if monitor else "-",
                )
            )
    return rows


def premise_rows():
    rows = []
    for program in racy_programs():
        for name in ("definition1", "adve-hill"):
            report = ENGINE.contract_sweep(
                program, POLICIES[name], SystemConfig(), seeds=range(40)
            )
            rows.append(
                (
                    program.name,
                    name,
                    report.distinct_results,
                    "yes" if report.appears_sc else "no",
                )
            )
    return rows


def test_e5_contract_holds_for_drf0_suite(benchmark):
    rows = benchmark.pedantic(contract_rows, rounds=1, iterations=1)
    emit_table(
        "E5",
        "Definition 2 -- DRF0 suite x implementations (15 seeds each)",
        ["program", "policy", "distinct results", "appears SC",
         "Sec 5.1 violations"],
        rows,
        notes="Every row must read 'yes': that is the hardware's contract.",
    )
    assert all(row[3] == "yes" for row in rows)
    assert all(row[4] in ("-", 0) for row in rows)


def test_e5_racy_premise_is_necessary(benchmark):
    rows = benchmark.pedantic(premise_rows, rounds=1, iterations=1)
    emit_table(
        "E5b",
        "The premise matters: racy programs on weakly ordered hardware",
        ["program", "policy", "distinct results", "appears SC"],
        rows,
        notes=(
            "Definition 2 promises nothing here; at least one racy program\n"
            "observes a non-SC result on weak hardware."
        ),
    )
    assert any(row[3] == "no" for row in rows)
