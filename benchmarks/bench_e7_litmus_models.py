"""E7 -- litmus outcomes across axiomatic models and the hardware.

The positioning table behind Sections 1-3: which interesting outcomes
each model admits (SC / TSO-like / coherence-only / the Definition-2
contract model), cross-validated against the operational enumerator and
the simulated hardware.  Also times candidate-execution enumeration --
the practical cost of axiomatic reasoning.
"""

from conftest import emit_table

from repro.axiomatic import (
    CoherenceModel,
    SCModel,
    TSOModel,
    WeakOrderingDRF,
    allowed_results,
    enumerate_candidates,
)
from repro.axiomatic.events import UnsupportedProgram
from repro.core.sc import sc_results
from repro.litmus import all_tests

MODELS = [
    ("SC", SCModel()),
    ("TSO", TSOModel()),
    ("COHERENCE", CoherenceModel()),
    ("WO-DRF0", WeakOrderingDRF()),
]


def litmus_model_table():
    rows = []
    for test in all_tests():
        cells = []
        supported = True
        for _, model in MODELS:
            try:
                results = allowed_results(test.program, model)
            except UnsupportedProgram:
                cells.append("-")
                supported = False
                continue
            cells.append("yes" if test.outcome_observed(results) else "no")
        if supported:
            # cross-validation: axiomatic SC == operational SC
            assert allowed_results(test.program, SCModel()) == sc_results(
                test.program
            ), test.name
        rows.append((test.name, "yes" if test.drf0 else "no", *cells))
    return rows


def test_e7_model_outcome_table(benchmark):
    rows = benchmark.pedantic(litmus_model_table, rounds=1, iterations=1)
    emit_table(
        "E7",
        "Interesting-outcome admission per axiomatic model",
        ["test", "DRF0", *(name for name, _ in MODELS)],
        rows,
        notes=(
            "WO-DRF0 is Definition 2 as a model: SC outcomes for DRF0\n"
            "programs, coherent outcomes otherwise.  '-' = program outside\n"
            "the straight-line axiomatic fragment."
        ),
    )
    by_name = {r[0]: r for r in rows}
    assert by_name["SB"][2:] == ("no", "yes", "yes", "yes")
    assert by_name["TAS"][2:] == ("no", "no", "no", "no")
    # the contract model tracks SC on every DRF0-conforming straight-line test
    for row in rows:
        if row[1] == "yes" and row[2] != "-":
            assert row[5] == row[2], row


def test_e7_candidate_enumeration_speed(benchmark):
    """Throughput of candidate enumeration on the largest catalog test."""
    from repro.litmus.catalog import iriw

    program = iriw().program
    count = benchmark(lambda: sum(1 for _ in enumerate_candidates(program)))
    assert count > 0
