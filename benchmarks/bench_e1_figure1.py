"""E1 -- Figure 1: sequential-consistency violations per hardware configuration.

Regenerates the paper's Figure-1 matrix: the store-buffer litmus ("both
processors killed") on the four hardware configurations, with a relaxed
memory system versus an SC-enforcing one.  The paper's claim: every
configuration can violate SC when its performance features run
unconstrained, via exactly the mechanism the figure's caption names
(write buffers on buses, message reordering on general networks,
incomplete invalidations with caches).
"""

from conftest import emit_table

from repro.hw import RelaxedPolicy, SCPolicy
from repro.litmus.catalog import store_buffer
from repro.sim.system import FIGURE1_CONFIGS, run_on_hardware

SEEDS = range(40)


def figure1_matrix():
    """Rows of (config, policy, violation observed, distinct results)."""
    test = store_buffer()
    rows = []
    for config_name, config in FIGURE1_CONFIGS.items():
        for policy_name, factory in (("relaxed", RelaxedPolicy), ("sc", SCPolicy)):
            results = {
                run_on_hardware(test.program, factory(), config.with_seed(s)).result
                for s in SEEDS
            }
            rows.append(
                (
                    config_name,
                    policy_name,
                    "yes" if test.outcome_observed(results) else "no",
                    len(results),
                )
            )
    return rows


def test_e1_figure1_matrix(benchmark):
    rows = benchmark.pedantic(figure1_matrix, rounds=1, iterations=1)
    emit_table(
        "E1",
        "Figure 1 -- can both processors be killed? (SB litmus, 40 seeds)",
        ["configuration", "memory system", "violation observed", "distinct results"],
        rows,
        notes=(
            "Paper: the violation is possible on every configuration with\n"
            "unconstrained hardware, impossible under sequential consistency."
        ),
    )
    by_key = {(r[0], r[1]): r[2] for r in rows}
    for config_name in FIGURE1_CONFIGS:
        assert by_key[(config_name, "relaxed")] == "yes", config_name
        assert by_key[(config_name, "sc")] == "no", config_name
