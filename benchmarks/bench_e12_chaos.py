"""E12 -- chaos: Definition-2 verdicts under a hostile memory system.

Runs the full chaos suite (:func:`repro.verify.chaos.chaos_sweep`): a
fault-free baseline Definition-2 sweep, one full sweep per named
delivery-preserving fault plan (the verdict map must match the baseline
bit-for-bit), and per-run probes of both delivery-violating plans (every
non-completing probe must end in a diagnosed ``LivenessError``, never a
hang).  The run **fails** if any verdict moves or any probe escapes
undiagnosed -- this is the paper's "results, not timings" claim under
adversarial hardware.

Output: ``benchmarks/results/E12.txt`` (plan table) and
``benchmarks/results/E12_chaos.json`` (the full JSON report).

Run modes::

    python benchmarks/bench_e12_chaos.py            # full suite
    python benchmarks/bench_e12_chaos.py --quick    # CI-sized suite
    pytest benchmarks/bench_e12_chaos.py
    REPRO_BENCH_QUICK=1 pytest benchmarks/bench_e12_chaos.py
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from conftest import RESULTS_DIR, emit_table

from repro.verify.chaos import chaos_sweep


def run(quick: bool = False) -> None:
    start = time.perf_counter()
    report = chaos_sweep(quick=quick, jobs=0)
    elapsed = time.perf_counter() - start

    rows = []
    for outcome in report.outcomes:
        if outcome.delivery_preserving:
            verdict = "MATCH" if outcome.verdicts_match else "MISMATCH"
            detail = f"{sum(outcome.fault_events.values())} fault events"
        else:
            verdict = f"{outcome.flagged}/{outcome.runs} flagged"
            detail = f"{outcome.completed} completed, " + (
                "clean" if not outcome.unexpected_errors else "ESCAPED"
            )
        rows.append(
            (
                outcome.plan,
                "preserving" if outcome.delivery_preserving else "VIOLATING",
                verdict,
                detail,
            )
        )

    emit_table(
        "E12",
        "verdict invariance under fault injection "
        f"({len(report.programs)} programs x {len(report.policies)} "
        f"policies x {report.seeds} seeds per plan)",
        ["fault plan", "delivery", "verdicts", "detail"],
        rows,
        notes=(
            f"invariance {'HOLDS' if report.invariance_holds else 'BROKEN'}; "
            f"liveness detection "
            f"{'SOUND' if report.watchdog_sound else 'BROKEN'}; "
            f"{elapsed:.1f}s"
        ),
    )

    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / "E12_chaos.json", "w", encoding="utf-8") as fh:
        json.dump(report.to_json(), fh, indent=2, sort_keys=True)
        fh.write("\n")

    assert report.invariance_holds, "a delivery-preserving plan moved a verdict"
    assert report.watchdog_sound, "a delivery-violating probe escaped"


def test_e12_chaos() -> None:
    run(quick=bool(os.environ.get("REPRO_BENCH_QUICK")))


if __name__ == "__main__":
    run(quick="--quick" in sys.argv[1:])
