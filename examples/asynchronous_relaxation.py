#!/usr/bin/env python3
"""Asynchronous algorithms: useful programs outside the contract.

Section 3 of the paper concedes a limitation of Definition 2: "there are
useful parallel programmer's models that are not easily expressed in terms
of sequential consistency.  One such model is used by the designers of
asynchronous algorithms ...  (We expect, however, it will be
straightforward to implement weakly ordered hardware to obtain reasonable
results for asynchronous algorithms.)"

This example builds a tiny asynchronous (chaotic) relaxation: worker
threads repeatedly average their cell with their neighbours' *possibly
stale* values, with **no synchronization at all**.  The program is full of
data races, so:

* the DRF0 checker rejects it (as it should);
* Definition 2 promises nothing about it on weakly ordered hardware;
* and yet -- exactly as the paper expects -- the weakly ordered
  implementation converges to the same fixed point, because the algorithm
  tolerates staleness by construction.

Run:  python examples/asynchronous_relaxation.py
"""

from repro.core.drf0 import check_program_sampled
from repro.hw import AdveHillPolicy, SCPolicy
from repro.machine.dsl import ThreadBuilder, build_program
from repro.sim.system import SystemConfig, run_on_hardware


def relaxation_program(rounds: int = 10):
    """Three cells; each worker repeatedly sets its cell to the average of
    its two neighbours (integer arithmetic, fixed endpoint cells).

    With boundary cells pinned at 0 and 96, the interior converges toward
    the linear interpolation regardless of the interleaving or staleness.
    """
    # cells: b0 (=0, fixed), c1, c2, c3, b4 (=96, fixed)
    workers = []
    for index, (left, mine, right) in enumerate(
        [("b0", "c1", "c2"), ("c1", "c2", "c3"), ("c2", "c3", "b4")]
    ):
        t = ThreadBuilder()
        for _ in range(rounds):
            t.load("l", left)
            t.load("r", right)
            t.add("sum", "l", "r")
            t.div("avg", "sum", 2)
            t.store(mine, "avg")
            t.delay(15)  # local work between sweeps lets values propagate
        workers.append(t)
    return build_program(
        workers,
        initial_memory={"b0": 0, "b4": 96, "c1": 0, "c2": 0, "c3": 0},
        name=f"chaotic-relaxation-r{rounds}",
    )


def main() -> None:
    program = relaxation_program(rounds=10)

    verdict = check_program_sampled(program, seeds=range(20))
    print(f"{program.name!r} obeys DRF0: {verdict.obeys}")
    print(f"  (first race: {verdict.race})")

    print("\nfinal interior cells across seeds (weakly ordered hardware):")
    outcomes = set()
    for seed in range(6):
        run = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=seed))
        cells = tuple(
            run.result.memory_value(c) for c in ("c1", "c2", "c3")
        )
        outcomes.add(cells)
        print(f"  seed {seed}: c1={cells[0]:<6} c2={cells[1]:<6} c3={cells[2]:<6}")

    sc_run = run_on_hardware(program, SCPolicy(), SystemConfig(seed=0))
    sc_cells = tuple(sc_run.result.memory_value(c) for c in ("c1", "c2", "c3"))
    print(f"  SC    0: c1={sc_cells[0]:<6} c2={sc_cells[1]:<6} c3={sc_cells[2]:<6}")

    print(
        "\nThe program races (DRF0 rejects it) and different schedules give\n"
        "different intermediate values -- Definition 2 promises nothing here.\n"
        "Yet every run makes monotone progress toward the fixed point: the\n"
        "'reasonable results for asynchronous algorithms' the paper expects\n"
        "from weakly ordered hardware, without any contract."
    )


if __name__ == "__main__":
    main()
