#!/usr/bin/env python3
"""Hunting a hardware bug with the Definition-2 contract checker.

Definition 2's selling point (Section 3) is that it is "formally specified
so that separate proofs can be done to ascertain whether software and
hardware are correct".  The executable version of the hardware proof
obligation is a *contract sweep*: run DRF0 programs across many
nondeterminism seeds and check every result against the exact
sequential-consistency membership oracle.

This example sabotages the Section-5.3 implementation by removing the
reserve bits -- the very mechanism that makes the next synchronizer wait
for the releaser's pending writes (condition 5) -- and hunts for the bug.
The window is narrow (one invalidation must lose a race against the whole
flag hand-off), so single runs usually look fine: that is exactly why
memory-system bugs survive bring-up, and why a checker needs lots of
seeds.

Run:  python examples/hardware_bug_hunt.py      (a minute or two)
"""

from repro.core.contract import is_sc_result
from repro.core.drf0 import check_program
from repro.hw import AdveHillPolicy
from repro.litmus.figures import figure3_program
from repro.sim.system import SystemConfig, run_on_hardware


class NoReserveBits(AdveHillPolicy):
    """The sabotaged implementation: condition 4 intact, condition 5 gone."""

    use_reserve_bits = False
    name = "adve-hill-without-reserve-bits"


def hunt(policy_factory, seeds, config_kwargs):
    violations = []
    for seed in seeds:
        config = SystemConfig(seed=seed, **config_kwargs)
        run = run_on_hardware(figure3_program(), policy_factory(), config)
        if not is_sc_result(run.program, run.result):
            violations.append((seed, run.result))
    return violations


def main() -> None:
    program = figure3_program()
    assert check_program(program).obeys, "the probe program must be DRF0"
    print(f"probe program: {program.name} (obeys DRF0)")
    print("probe pattern: P0 writes x (P1 holds a shared copy), releases s;")
    print("P1 acquires s and reads x -- a stale x is a contract violation.\n")

    config_kwargs = dict(net_latency=1, net_jitter=60)
    seeds = range(400)

    print("sweeping the sabotaged implementation (no reserve bits)...")
    broken = hunt(NoReserveBits, seeds, config_kwargs)
    print(f"  {len(broken)} contract violations in {len(seeds)} seeds")
    if broken:
        seed, result = broken[0]
        print(f"  first witness: seed {seed}")
        print(f"    {result}")
        print("    P1 observed the released flag yet read the *old* x:")
        print("    no idealized execution can produce this result.\n")

    print("sweeping the correct Section-5.3 implementation...")
    correct = hunt(AdveHillPolicy, seeds, config_kwargs)
    print(f"  {len(correct)} contract violations in {len(seeds)} seeds")

    print(
        "\nThe reserve bit is what delays the next synchronizer until the\n"
        "releaser's writes are globally performed (condition 5).  Remove it\n"
        f"and the contract breaks -- but only on {len(broken)} of "
        f"{len(seeds)} timing seeds,\n"
        "which is why such bugs are invisible to a handful of test runs and\n"
        "why the paper's separable, formal hardware obligation matters."
    )


if __name__ == "__main__":
    main()
