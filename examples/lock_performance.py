#!/usr/bin/env python3
"""The quantitative study the paper calls for, in miniature.

Compares the three implementations (plus the DRF1-optimized variant)
across the workload suite and prints mean cycles per workload.  The shape
to look for, per the paper's analysis:

* SC pays a globally-performed round trip per access: slowest;
* Definition 1 overlaps data accesses between sync points but stalls the
  issuing processor at every synchronization operation;
* the Section-5.3 implementation lets the releasing processor run ahead
  (Figure 3), so sync-heavy workloads gain the most;
* the DRF1 read-only-sync optimization pays off exactly on spin-heavy
  workloads (Test-and-TestAndSet under contention, Section 6).

Run:  python examples/lock_performance.py          (about a minute)
"""

from repro.hw import AdveHillPolicy, Definition1Policy, SCPolicy
from repro.sim.system import SystemConfig, run_on_hardware
from repro.workloads import (
    barrier_workload,
    contended_release_workload,
    lock_workload,
    phase_parallel_workload,
    producer_consumer_workload,
)

POLICIES = [
    ("SC", SCPolicy),
    ("Def1", Definition1Policy),
    ("AdveHill", AdveHillPolicy),
    ("AH+DRF1", lambda: AdveHillPolicy(drf1_optimized=True)),
]

WORKLOADS = [
    lock_workload(4, 2),
    lock_workload(4, 2, ttas=True),
    contended_release_workload(num_spinners=3, hold_cycles=300),
    producer_consumer_workload(batch_size=12, post_release_work=40),
    barrier_workload(num_procs=4, phases=2),
    phase_parallel_workload(num_procs=4, chunk=4, phases=2),
]

SEEDS = range(10)


def mean_cycles(program, factory) -> float:
    total = 0
    for seed in SEEDS:
        total += run_on_hardware(program, factory(), SystemConfig(seed=seed)).cycles
    return total / len(SEEDS)


def main() -> None:
    names = [name for name, _ in POLICIES]
    print(f"{'workload':<28}" + "".join(f"{n:>10}" for n in names) + f"{'AH/SC':>8}")
    print("-" * (28 + 10 * len(names) + 8))
    for program in WORKLOADS:
        cells = [mean_cycles(program, factory) for _, factory in POLICIES]
        speedup = cells[0] / cells[2]
        print(
            f"{program.name:<28}"
            + "".join(f"{c:>10.0f}" for c in cells)
            + f"{speedup:>8.2f}"
        )
    print(
        "\nAH/SC is the speedup of the paper's implementation over the"
        "\nsequentially consistent baseline (higher is better)."
    )


if __name__ == "__main__":
    main()
