#!/usr/bin/env python3
"""Quickstart: the software/hardware contract in five minutes.

Builds the paper's message-passing pattern, checks the software side of
the contract (DRF0, Definition 3), runs the program on three simulated
memory systems (sequentially consistent, Definition-1 weak ordering, and
the paper's Section-5.3 implementation), and verifies the hardware side of
the contract (every observed result appears sequentially consistent --
Definition 2).

Run:  python examples/quickstart.py
"""

from repro import Condition, ThreadBuilder, build_program, is_sc_result, obeys_drf0
from repro.core.sc import sc_results
from repro.hw import AdveHillPolicy, Definition1Policy, SCPolicy
from repro.sim.system import SystemConfig, run_on_hardware


def main() -> None:
    # -- 1. Write a parallel program in the register-machine DSL. -----------
    # P0 produces a value and releases a flag with a write-only
    # synchronization (Unset); P1 spins on the flag with read-only
    # synchronization (Test) and then reads the data.
    producer = ThreadBuilder().store("data", 42).unset("flag")
    consumer = (
        ThreadBuilder()
        .label("spin")
        .sync_load("seen", "flag")
        .branch_if(Condition.NE, "seen", 0, "spin")
        .load("value", "data")
    )
    program = build_program(
        [producer, consumer], initial_memory={"flag": 1}, name="quickstart-mp"
    )

    # -- 2. Software side of the contract: does it obey DRF0? ---------------
    print(f"program {program.name!r} obeys DRF0:", obeys_drf0(program))

    # -- 3. The idealized architecture: enumerate SC results. ---------------
    results = sc_results(program)
    print(f"distinct sequentially consistent results: {len(results)}")
    sample = sorted(results, key=str)[0]
    print("  e.g.", sample)

    # -- 4. Hardware side: run on three memory systems. ---------------------
    policies = [
        ("sequential consistency  ", SCPolicy),
        ("weak ordering (Def. 1)  ", Definition1Policy),
        ("weak ordering (Sec. 5.3)", AdveHillPolicy),
    ]
    print("\npolicy                       cycles   consumer-read   appears-SC")
    for label, factory in policies:
        run = run_on_hardware(program, factory(), SystemConfig(seed=7))
        data_read = run.result.reads[1][-1]
        verdict = is_sc_result(program, run.result)
        print(f"{label}    {run.cycles:6d}   data={data_read:<6d}     {verdict}")
    print(
        "\nAll three implementations honour Definition 2: the program obeys"
        "\nDRF0, so every result they produce is a sequentially consistent one."
    )


if __name__ == "__main__":
    main()
