#!/usr/bin/env python3
"""Race detection: finding the race, reading the witness, fixing the code.

Starts from a buggy double-checked flag hand-off (plain data accesses),
uses the Definition-3 checker to produce a concrete racy idealized
execution, prints the happens-before evidence, then fixes the program
with synchronization operations and shows it now obeys DRF0.  Finally the
Shasha-Snir delay-set analysis shows the static view of the same bug.

Run:  python examples/race_detection.py
"""

from repro import Condition, ThreadBuilder, build_program
from repro.analysis import analyze
from repro.core.drf0 import check_program
from repro.core.relations import happens_before


def buggy_program():
    """Flag hand-off with plain loads/stores: the MP race."""
    producer = ThreadBuilder().store("payload", 99).store("ready", 1)
    consumer = ThreadBuilder().load("r_ready", "ready").load("r_payload", "payload")
    return build_program([producer, consumer], name="buggy-handoff")


def fixed_program():
    """Same hand-off through hardware-visible synchronization."""
    producer = ThreadBuilder().store("payload", 99).unset("ready")
    consumer = (
        ThreadBuilder()
        .label("spin")
        .sync_load("r_ready", "ready")
        .branch_if(Condition.NE, "r_ready", 0, "spin")
        .load("r_payload", "payload")
    )
    return build_program(
        [producer, consumer], initial_memory={"ready": 1}, name="fixed-handoff"
    )


def main() -> None:
    buggy = buggy_program()
    report = check_program(buggy)
    print(f"{buggy.name!r} obeys DRF0: {report.obeys}")
    assert report.race is not None and report.witness is not None
    race = report.race
    print(f"  race: {race.first}  vs  {race.second}")
    print("  witnessing idealized execution (completion order):")
    for op in report.witness.ops:
        print(f"    {op}")
    hb = happens_before(report.witness)
    print(
        "  happens-before orders the pair:",
        hb.ordered_either_way(race.first, race.second),
        "(a data race: conflicting and unordered)",
    )

    print("\nStatic view (Shasha-Snir delay sets):")
    for line in analyze(buggy).describe():
        print("   ", line)

    fixed = fixed_program()
    fixed_report = check_program(fixed)
    print(f"\n{fixed.name!r} obeys DRF0: {fixed_report.obeys}")
    print(
        "The Unset/Test pair creates the synchronization-order edge that\n"
        "happens-before needs; by Definition 2 any weakly ordered machine\n"
        "now owes this program sequentially consistent behaviour."
    )


if __name__ == "__main__":
    main()
