#!/usr/bin/env python3
"""Litmus explorer: which outcomes does each memory model allow?

For every litmus test in the catalog, prints:

* whether the test's interesting outcome is allowed by the axiomatic
  models (SC / TSO-like / coherence-only),
* whether the program obeys DRF0,
* whether the outcome was actually observed on the simulated hardware
  (relaxed strawman vs the paper's weakly ordered implementation).

This regenerates, in table form, the Figure-1 argument: relaxed hardware
exhibits non-SC outcomes, but only on programs that break the
synchronization model -- the weakly ordered implementation never shows a
non-SC outcome to a DRF0 program.

Run:  python examples/litmus_explorer.py          (about a minute)
"""

from repro.axiomatic import CoherenceModel, SCModel, TSOModel, allowed_results
from repro.axiomatic.events import UnsupportedProgram
from repro.hw import AdveHillPolicy, RelaxedPolicy
from repro.litmus import all_tests, run_litmus_on_hardware
from repro.sim.system import SystemConfig

MODELS = [("SC", SCModel()), ("TSO", TSOModel()), ("COH", CoherenceModel())]


def axiomatic_cell(test, model) -> str:
    try:
        results = allowed_results(test.program, model)
    except UnsupportedProgram:
        return "  - "
    return "yes " if test.outcome_observed(results) else "no  "


def main() -> None:
    header = (
        f"{'test':<14}{'DRF0':<7}" +
        "".join(f"{name:<6}" for name, _ in MODELS) +
        f"{'relaxed-hw':<12}{'adve-hill-hw':<13}"
    )
    print(header)
    print("-" * len(header))
    for test in all_tests():
        cells = [axiomatic_cell(test, model) for _, model in MODELS]
        relaxed = run_litmus_on_hardware(
            test, RelaxedPolicy, SystemConfig(), seeds=range(25),
            check_contract=False,
        )
        weak = run_litmus_on_hardware(
            test, AdveHillPolicy, SystemConfig(), seeds=range(25),
            check_contract=False,
        )
        print(
            f"{test.name:<14}"
            f"{'yes' if test.drf0 else 'no':<7}"
            + "".join(f"{c:<6}" for c in cells)
            + f"{'observed' if relaxed.outcome_observed else 'never':<12}"
            + f"{'observed' if weak.outcome_observed else 'never':<13}"
        )
    print(
        "\nReading the table: every test's interesting outcome is forbidden"
        "\nunder SC.  The relaxed strawman exhibits it on racy tests; the"
        "\npaper's implementation never exhibits it on DRF0 tests -- that is"
        "\nDefinition 2 at work."
    )


if __name__ == "__main__":
    main()
