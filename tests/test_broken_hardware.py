"""Negative hardware tests: sabotaged implementations must break the contract.

These are the mutation tests of the hardware side: each removes one
mechanism the paper's correctness argument needs and pins a seed where the
contract checker catches the resulting non-SC behaviour.  They double as
regression tests for the checker's sensitivity (if a protocol change makes
the violation unreachable, these tests say so).
"""

import pytest

from repro.core.contract import is_sc_result
from repro.hw import AdveHillPolicy, Definition1Policy
from repro.litmus.figures import figure3_program
from repro.sim.system import SystemConfig, run_on_hardware

JITTERY = dict(net_latency=1, net_jitter=60)
#: Seeds where the no-reserve-bit bug manifests with JITTERY timing
#: (found by sweep; deterministic given the config).
WITNESS_SEEDS = [60, 104, 113, 134, 186, 198, 234, 288]


class NoReserveBits(AdveHillPolicy):
    use_reserve_bits = False
    name = "no-reserve-bits"


class TestReserveBitMutation:
    def test_known_seed_violates_contract(self):
        program = figure3_program()
        run = run_on_hardware(
            program, NoReserveBits(), SystemConfig(seed=WITNESS_SEEDS[0], **JITTERY)
        )
        assert not is_sc_result(program, run.result)

    def test_correct_implementation_clean_on_witness_seeds(self):
        program = figure3_program()
        for seed in WITNESS_SEEDS:
            run = run_on_hardware(
                program, AdveHillPolicy(), SystemConfig(seed=seed, **JITTERY)
            )
            assert is_sc_result(program, run.result), seed

    def test_definition1_also_clean_on_witness_seeds(self):
        program = figure3_program()
        for seed in WITNESS_SEEDS[:4]:
            run = run_on_hardware(
                program, Definition1Policy(), SystemConfig(seed=seed, **JITTERY)
            )
            assert is_sc_result(program, run.result), seed

    def test_violation_rate_is_nonzero_but_low(self):
        """The bug's narrow window: some seeds catch it, most do not --
        the motivation for sweep-based contract checking."""
        program = figure3_program()
        violations = 0
        for seed in range(120):
            run = run_on_hardware(
                program, NoReserveBits(), SystemConfig(seed=seed, **JITTERY)
            )
            if not is_sc_result(program, run.result):
                violations += 1
        assert 0 < violations < 60


class TestStallVariantDeadlock:
    """The E8a reproduction finding as a pinned regression test."""

    def test_cross_reservation_deadlocks_in_stall_mode(self):
        from repro.core.types import Condition
        from repro.machine.dsl import ThreadBuilder, build_program
        from repro.sim.system import SimulationDeadlock

        warm_a = ThreadBuilder().load("w", "b").unset("ga")
        warm_b = ThreadBuilder().load("w", "a").unset("gb")
        p0 = (
            ThreadBuilder()
            .label("g").test_and_set("rg", "ga")
            .branch_if(Condition.NE, "rg", 0, "g")
            .store("a", 1).unset("s").test_and_set("r0", "t")
        )
        p1 = (
            ThreadBuilder()
            .label("g").test_and_set("rg", "gb")
            .branch_if(Condition.NE, "rg", 0, "g")
            .store("b", 1).unset("t").test_and_set("r1", "s")
        )
        program = build_program(
            [p0, p1, warm_a, warm_b],
            initial_memory={"ga": 1, "gb": 1, "s": 1, "t": 1},
            name="cross-sync",
        )
        deadlocks = 0
        for seed in range(10):
            config = SystemConfig(
                seed=seed, net_latency=5, net_jitter=10, remote_sync_nack=False
            )
            try:
                run_on_hardware(program, AdveHillPolicy(), config)
            except SimulationDeadlock:
                deadlocks += 1
        assert deadlocks > 0  # the stall variant really deadlocks

        # and the NACK default never does, with SC results throughout
        for seed in range(10):
            config = SystemConfig(seed=seed, net_latency=5, net_jitter=10)
            run = run_on_hardware(program, AdveHillPolicy(), config)
            assert is_sc_result(program, run.result)
