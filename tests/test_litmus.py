"""Tests for the litmus catalog, the paper's figures, and the harness."""

import pytest

from repro.core.drf0 import check_program, races_in_execution
from repro.core.models import DRF0_MODEL, DRF1_MODEL
from repro.core.sc import sc_results
from repro.hw import AdveHillPolicy, RelaxedPolicy, SCPolicy
from repro.litmus import (
    all_tests,
    by_name,
    figure2a_execution,
    figure2b_execution,
    figure3_program,
    hardware_outcome_table,
    run_litmus_on_hardware,
    verify_catalog_expectations,
)
from repro.sim.system import SystemConfig


class TestCatalogSelfConsistency:
    def test_names_unique(self):
        names = [t.name for t in all_tests()]
        assert len(names) == len(set(names))

    def test_by_name(self):
        assert by_name("SB").name == "SB"
        with pytest.raises(KeyError):
            by_name("nope")

    def test_catalog_flags_match_oracles(self):
        """Every sc_allows / drf0 flag agrees with exhaustive checking."""
        assert verify_catalog_expectations(all_tests()) == []

    @pytest.mark.parametrize("test", all_tests(), ids=lambda t: t.name)
    def test_sc_never_shows_sc_forbidden_outcomes(self, test):
        if not test.sc_allows:
            results = sc_results(test.program)
            assert not test.outcome_observed(results)


class TestFigure2:
    """E2: the paper's DRF0 example and counter-example."""

    def test_figure2a_obeys_drf0(self):
        assert races_in_execution(figure2a_execution(), DRF0_MODEL) == []

    def test_figure2b_has_the_documented_races(self):
        races = races_in_execution(figure2b_execution(), DRF0_MODEL)
        assert races
        locations = {race.first.location for race in races}
        # the caption's two violations: P0/P1 on x and P2-or-P3/P4 on y
        assert locations == {"x", "y"}
        proc_pairs = {
            frozenset((race.first.proc, race.second.proc)) for race in races
        }
        assert frozenset((0, 1)) in proc_pairs
        assert any(4 in pair for pair in proc_pairs)

    def test_figure2a_clean_under_drf1_too(self):
        assert races_in_execution(figure2a_execution(), DRF1_MODEL) == []


class TestFigure3Program:
    def test_obeys_drf0(self):
        assert check_program(figure3_program()).obeys

    def test_consumer_reads_the_written_value(self):
        for result in sc_results(figure3_program()):
            assert result.reads[1][-1] == 1  # R(x) after acquiring s

    def test_extra_sharers_still_drf0(self):
        assert check_program(figure3_program(num_extra_sharers=1)).obeys


class TestHarness:
    def test_relaxed_hardware_breaks_sb(self):
        report = run_litmus_on_hardware(
            by_name("SB"), RelaxedPolicy, SystemConfig(), seeds=range(30)
        )
        assert report.outcome_observed
        assert not report.appears_sc
        # SB violates DRF0, so Definition 2 is not violated
        assert report.contract_respected

    def test_sc_hardware_respects_everything(self):
        report = run_litmus_on_hardware(
            by_name("SB"), SCPolicy, SystemConfig(), seeds=range(15)
        )
        assert not report.outcome_observed
        assert report.appears_sc

    def test_weakly_ordered_hardware_keeps_contract_on_drf0_tests(self):
        for name in ("MP+sync", "SB+sync", "TAS", "disjoint"):
            report = run_litmus_on_hardware(
                by_name(name), AdveHillPolicy, SystemConfig(), seeds=range(12)
            )
            assert report.contract_respected, name
            assert not report.outcome_observed, name

    def test_outcome_table_rows(self):
        rows = hardware_outcome_table(
            [by_name("TAS")],
            {"sc": SCPolicy, "adve-hill": AdveHillPolicy},
            SystemConfig(),
            seeds=range(5),
        )
        assert len(rows) == 2
        assert all(row["contract_respected"] for row in rows)
