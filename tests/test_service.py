"""The campaign daemon: leases, breaker, protocol, chaos invariance.

Unit layers (TaskBoard, CircuitBreaker, CampaignSpec) run in-process;
the integration tests fork a real daemon per test on an ephemeral port
and drive it through :class:`repro.service.client.ServiceClient` --
including the headline robustness obligations: injected worker kills
plus a daemon SIGKILL/restart must leave the evidence table
byte-identical to a serial in-process sweep, and a wedged worker's
lease must be reclaimed (visible in ``engine.service.*``).
"""

import json
import multiprocessing
import os
import signal
import time

import pytest

from repro.service.campaigns import CampaignError, CampaignSpec
from repro.service.client import ServiceClient, ServiceError
from repro.service.supervisor import (
    HEALTHY,
    QUARANTINED,
    SUSPECT,
    CircuitBreaker,
)
from repro.verify.leases import (
    DEGRADE,
    RETRY,
    STALE,
    BackoffPolicy,
    TaskBoard,
)

# ---------------------------------------------------------------------------
# TaskBoard: lease generations, dedupe, backoff, degradation
# ---------------------------------------------------------------------------


def test_taskboard_first_completion_wins():
    board = TaskBoard(2)
    a = board.grant(0.0)
    b = board.grant(0.0)
    assert {a.task, b.task} == {0, 1}
    assert board.complete(a.task, a.gen)
    # A duplicate completion (resubmitted task finishing twice) is
    # ignored and counted, never double-folded.
    assert not board.complete(a.task, a.gen)
    assert board.counters["duplicate_completions"] == 1
    assert board.complete(b.task, b.gen)
    assert board.finished


def test_taskboard_charges_one_failure_per_lease():
    """The timeout-then-crash double report: one lease, one charge."""
    board = TaskBoard(1, max_retries=3)
    lease = board.grant(0.0)
    assert board.fail(lease.task, lease.gen, "task_timeouts", 0.0) == RETRY
    # The wedged worker dies *after* its timeout was already charged:
    # same (task, gen), so the death must not burn a second retry.
    assert board.fail(lease.task, lease.gen, "task_timeouts", 0.1) == STALE
    assert board.counters["task_timeouts"] == 1
    assert board.counters["stale_failures"] == 1
    assert board.attempts[lease.task] == 1


def test_taskboard_stale_generation_failures_ignored():
    board = TaskBoard(1, max_retries=3)
    first = board.grant(0.0)
    board.fail(first.task, first.gen, "task_errors", 0.0)
    second = board.grant(10.0)  # the retry lease: a newer generation
    assert second.gen == first.gen + 1
    # A late failure report quoting the *old* generation is stale.
    assert board.fail(first.task, first.gen, "task_errors", 10.0) == STALE
    assert board.counters["task_errors"] == 1
    # And completion through the current lease still lands.
    assert board.complete(second.task, second.gen)


def test_taskboard_backoff_then_degrade():
    board = TaskBoard(
        1, max_retries=2, backoff=BackoffPolicy(base=10.0, jitter=0.0)
    )
    lease = board.grant(0.0)
    assert board.fail(lease.task, lease.gen, "task_errors", 0.0) == RETRY
    # Backoff: the retry is scheduled in the future, not granted now.
    assert board.grant(0.0) is None
    assert board.next_not_before() is not None
    retry = board.grant(1e9)
    assert retry is not None
    assert board.fail(retry.task, retry.gen, "task_errors", 1e9) == RETRY
    third = board.grant(2e9)
    assert board.fail(third.task, third.gen, "task_errors", 2e9) == DEGRADE
    assert board.counters["degraded_to_serial"] == 1
    assert board.counters["tasks_retried"] == 2
    assert board.counters["backoff_scheduled"] >= 1


def test_backoff_policy_is_bounded_and_jittered():
    policy = BackoffPolicy(base=0.1, ceiling=1.0, jitter=0.5)
    delays = [policy.delay(task=7, attempt=a) for a in range(1, 12)]
    assert all(0.0 < d <= 1.5 for d in delays)
    # Deterministic: same (task, attempt) -> same jitter.
    assert policy.delay(7, 3) == policy.delay(7, 3)
    assert policy.delay(7, 3) != policy.delay(8, 3)


# ---------------------------------------------------------------------------
# CircuitBreaker: healthy -> suspect -> quarantined -> recovered
# ---------------------------------------------------------------------------


def test_circuit_breaker_lifecycle():
    counters = {}
    breaker = CircuitBreaker(threshold=2, probe_interval=3, counters=counters)
    key = "cell:0"
    assert breaker.state(key) == HEALTHY
    assert breaker.route(key) == "fleet"

    breaker.record_failure(key)
    assert breaker.state(key) == SUSPECT
    breaker.record_success(key)
    assert breaker.state(key) == HEALTHY  # suspect heals on success

    breaker.record_failure(key)
    breaker.record_failure(key)
    assert breaker.state(key) == QUARANTINED
    assert counters["breaker_opened"] == 1

    routes = [breaker.route(key) for _ in range(6)]
    assert routes.count("serial") == 4  # every 3rd call probes the fleet
    assert routes.count("fleet") == 2
    assert counters["breaker_probes"] == 2

    breaker.record_success(key)  # a probe came back: circuit closes
    assert breaker.state(key) == HEALTHY
    assert counters["breaker_recovered"] == 1
    assert breaker.route(key) == "fleet"


# ---------------------------------------------------------------------------
# CampaignSpec: wire format, signatures, validation
# ---------------------------------------------------------------------------


def test_campaign_spec_roundtrip_and_signature():
    spec = CampaignSpec.from_dict(
        {
            "programs": ["SB", "MP+sync"],
            "policies": ["sc", "adve-hill"],
            "seeds": 3,
            "drf0_seeds": 2,
        }
    )
    again = CampaignSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.signature() == spec.signature()
    # Signatures are content hashes: any axis change moves them.
    other = CampaignSpec.from_dict(
        {"programs": ["SB"], "policies": ["sc"], "seeds": 3}
    )
    assert other.signature() != spec.signature()


def test_campaign_spec_resolves_workloads_and_config():
    spec = CampaignSpec.from_dict(
        {
            "programs": ["lock"],
            "policies": ["sc"],
            "config": {"topology": "bus", "seed": 5},
        }
    )
    programs, factories, config, failpoints = spec.resolve()
    assert programs[0].name
    assert list(factories) == ["sc"]
    assert config.topology == "bus" and config.seed == 5
    assert failpoints == ()


@pytest.mark.parametrize(
    "payload",
    [
        {"policies": ["sc"]},  # no programs
        {"programs": ["SB"]},  # no policies
        {"programs": ["no-such"], "policies": ["sc"]},
        {"programs": ["SB"], "policies": ["no-such"]},
        {"programs": ["SB"], "policies": ["sc"], "seeds": 0},
        {"programs": ["SB"], "policies": ["sc"], "config": {"bogus": 1}},
        {"programs": ["SB"], "policies": ["sc"],
         "config": {"faults": "no-such-plan"}},
        {"programs": ["SB"], "policies": ["sc"], "failpoints": [{}]},
    ],
)
def test_campaign_spec_rejects_bad_payloads(payload):
    with pytest.raises(CampaignError):
        spec = CampaignSpec.from_dict(payload)
        spec.resolve()


# ---------------------------------------------------------------------------
# Daemon integration (one forked daemon per test, port 0 handshake)
# ---------------------------------------------------------------------------

SMALL_SPEC = {
    "programs": ["SB"],
    "policies": ["sc", "adve-hill"],
    "seeds": 3,
    "drf0_seeds": 2,
}


def _daemon_proc(state_dir, **kwargs):
    from repro.service.daemon import CampaignDaemon

    def entry():
        CampaignDaemon(str(state_dir), port=0, **kwargs).serve_forever()

    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=entry)
    proc.start()
    return proc


def _wait_endpoint(state_dir, proc, timeout=30.0):
    path = os.path.join(str(state_dir), "endpoint.json")
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                endpoint = json.load(handle)
            if endpoint.get("pid") == proc.pid:
                return ServiceClient(endpoint["host"], endpoint["port"])
        except (OSError, ValueError, KeyError):
            pass
        assert proc.is_alive(), "daemon died during startup"
        time.sleep(0.05)
    raise AssertionError("daemon did not write endpoint.json in time")


def _stop_daemon(proc, state_dir):
    if proc.is_alive():
        try:
            ServiceClient.from_state_dir(str(state_dir)).shutdown()
        except ServiceError:
            pass
    proc.join(timeout=30.0)
    if proc.is_alive():
        proc.terminate()
        proc.join(timeout=10.0)


def _serial_rows(spec_dict):
    from repro.verify.engine import VerificationEngine

    spec = CampaignSpec.from_dict(spec_dict)
    programs, factories, config, _ = spec.resolve()
    evidence = VerificationEngine(jobs=1).definition2_sweep(
        programs,
        factories,
        config=config,
        seeds=range(spec.seeds),
        drf0_seeds=range(spec.drf0_seeds),
    )
    return evidence.rows


def test_daemon_campaign_matches_serial_and_warm_resubmit(tmp_path):
    state = tmp_path / "svc"
    proc = _daemon_proc(state, workers=2, task_timeout=60.0)
    try:
        client = _wait_endpoint(state, proc)
        health = client.health()
        assert health["ok"] and health["workers"] == 2

        first = client.submit(SMALL_SPEC)
        info = client.wait(first["id"], timeout=180.0)
        assert info["state"] == "done"
        result = client.result(first["id"])
        assert result["contract_holds"] is True
        baseline = json.dumps(_serial_rows(SMALL_SPEC), sort_keys=True)
        assert json.dumps(result["rows"], sort_keys=True) == baseline

        # Same spec again: answered from the shared verdict store --
        # the warm run re-proves nothing it already judged.
        second = client.submit(SMALL_SPEC)
        assert second["id"] != first["id"]
        assert second["signature"] == first["signature"]
        client.wait(second["id"], timeout=180.0)
        warm = client.result(second["id"])
        assert json.dumps(warm["rows"], sort_keys=True) == baseline
        cold_counters = result["metrics"]["counters"]
        warm_counters = warm["metrics"]["counters"]
        # The store counters are cumulative per daemon: the cold run
        # flushed verdicts, the warm run reused them and added nothing.
        assert cold_counters["engine.store.flushed_runs"] > 0
        assert (
            warm_counters["engine.store.flushed_runs"]
            == cold_counters["engine.store.flushed_runs"]
        )
        assert warm_counters["engine.store.runs_reused"] > cold_counters.get(
            "engine.store.runs_reused", 0
        )

        listed = client.campaigns()
        assert [row["state"] for row in listed] == ["done", "done"]
    finally:
        _stop_daemon(proc, state)


def test_daemon_reclaims_wedged_worker_lease(tmp_path):
    """A hang-mode failpoint wedges one fleet worker mid-task: the lease
    must time out, the worker be killed and replaced, and the retry land
    -- all visible in ``engine.service.*`` -- with evidence unchanged."""
    state = tmp_path / "svc"
    spec = dict(SMALL_SPEC)
    spec["failpoints"] = [
        {
            "task_kind": "run",
            "mode": "hang",
            "token": str(tmp_path / "wedge-token"),
        }
    ]
    proc = _daemon_proc(state, workers=2, task_timeout=2.0)
    try:
        client = _wait_endpoint(state, proc)
        accepted = client.submit(spec)
        info = client.wait(accepted["id"], timeout=180.0)
        assert info["state"] == "done"
        result = client.result(accepted["id"])
        baseline = json.dumps(_serial_rows(SMALL_SPEC), sort_keys=True)
        assert json.dumps(result["rows"], sort_keys=True) == baseline

        counters = result["metrics"]["counters"]
        assert counters["engine.service.leases_reclaimed"] >= 1
        assert counters["engine.service.task_timeouts"] >= 1
        assert counters["engine.service.tasks_retried"] >= 1
        assert counters["engine.service.workers_killed"] >= 1
        assert counters["engine.service.workers_replaced"] >= 1
    finally:
        _stop_daemon(proc, state)


def test_chaos_worker_kills_and_daemon_sigkill_bit_identical(tmp_path):
    """The headline acceptance: two injected worker kills plus a daemon
    SIGKILL/restart leave the verdict table byte-identical to serial."""
    from repro.verify.chaos import service_kill_chaos

    report = service_kill_chaos(
        str(tmp_path / "svc"),
        program_names=("SB",),
        policy_names=("sc", "adve-hill"),
        seeds=3,
        drf0_seeds=2,
        worker_kills=2,
        daemon_restart=True,
        workers=2,
        timeout=240.0,
    )
    assert report["worker_kills_fired"] >= 2
    assert report["daemon_restarts"] == 1
    assert report["resumed_after_restart"] is True
    assert report["rows_identical_to_serial"] is True
    assert report["ok"] is True


def test_daemon_sigkill_mid_campaign_resumes_byte_identical(tmp_path):
    """Kill-and-resume without worker chaos: SIGKILL the daemon while a
    campaign is mid-flight, restart on the same directories, and the
    finished evidence (and its JSON bytes) must match a serial sweep."""
    state = tmp_path / "svc"
    spec = {
        "programs": ["SB", "MP+sync"],
        "policies": ["sc", "adve-hill"],
        "seeds": 3,
        "drf0_seeds": 2,
    }
    proc = _daemon_proc(state, workers=2, task_timeout=60.0)
    client = _wait_endpoint(state, proc)
    accepted = client.submit(spec)
    cid = accepted["id"]
    # Wait until the campaign is demonstrably mid-flight (journal file
    # exists => the engine is dispatching), then murder the daemon.
    journal = state / "campaigns" / f"{cid}.journal"
    deadline = time.monotonic() + 60.0
    while not journal.exists():
        assert time.monotonic() < deadline, "campaign never started"
        assert proc.is_alive()
        time.sleep(0.02)
    os.kill(proc.pid, signal.SIGKILL)
    proc.join(timeout=10.0)

    proc = _daemon_proc(state, workers=2, task_timeout=60.0)
    try:
        client = _wait_endpoint(state, proc)
        info = client.wait(cid, timeout=180.0)
        assert info["state"] == "done"
        result = client.result(cid)
        raw = json.dumps(result["rows"], sort_keys=True)
        assert raw == json.dumps(_serial_rows(spec), sort_keys=True)
        assert result["service"].get("campaigns_requeued_on_start", 0) >= 1
    finally:
        _stop_daemon(proc, state)


def test_daemon_backpressure_and_bad_specs(tmp_path):
    state = tmp_path / "svc"
    proc = _daemon_proc(state, workers=1, queue_limit=1, task_timeout=60.0)
    try:
        client = _wait_endpoint(state, proc)
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"programs": ["no-such"], "policies": ["sc"]})
        assert excinfo.value.status == 400

        first = client.submit(SMALL_SPEC)
        # Queue full (1 pending/running): the next submission is told to
        # back off, with an honest Retry-After.
        with pytest.raises(ServiceError) as excinfo:
            client.submit(dict(SMALL_SPEC, seeds=4))
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after is not None
        # Bounded client-side backoff eventually lands the campaign.
        second = client.submit_with_backoff(
            dict(SMALL_SPEC, seeds=4), attempts=100, max_wait=180.0
        )
        client.wait(first["id"], timeout=180.0)
        client.wait(second["id"], timeout=180.0)
        health = client.health()
        assert health["service"]["rejected_backpressure"] >= 1
        assert health["campaigns"] == {"done": 2}
    finally:
        _stop_daemon(proc, state)


def test_daemon_retention_gc_keeps_last_n_journals(tmp_path):
    state = tmp_path / "svc"
    proc = _daemon_proc(state, workers=1, keep_journals=1, task_timeout=60.0)
    try:
        client = _wait_endpoint(state, proc)
        ids = []
        for seeds in (2, 3, 4):  # three distinct tiny campaigns
            accepted = client.submit(
                {"programs": ["SB"], "policies": ["sc"], "seeds": seeds,
                 "drf0_seeds": 2}
            )
            ids.append(accepted["id"])
            client.wait(accepted["id"], timeout=180.0)
        campaigns = state / "campaigns"
        survivors = [
            cid for cid in ids
            if (campaigns / f"{cid}.journal").exists()
        ]
        # keep_journals=1: only the newest terminal campaign's journal
        # survives; specs and results all do (they are the record).
        assert survivors == [ids[-1]]
        for cid in ids:
            assert (campaigns / f"{cid}.json").exists()
            assert (campaigns / f"{cid}.result.json").exists()
        health = client.health()
        assert health["service"]["journal_files_pruned"] >= 2
    finally:
        _stop_daemon(proc, state)
