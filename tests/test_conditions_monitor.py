"""Unit tests for the Section-5.1 condition monitor with synthetic runs.

The integration tests check the monitor against real simulator runs; these
construct hand-crafted access timelines to verify each condition fires on
exactly the violation it describes.
"""

from repro.core.types import OpKind
from repro.sim.access import AccessRecord
from repro.verify.conditions import check_conditions


class FakeRun:
    """Minimal stand-in for MachineRun: just raw_accesses."""

    def __init__(self, raw_accesses):
        self.raw_accesses = raw_accesses


def access(uid, proc, po, kind, loc, gen=None, commit=None, gp=None, write=None):
    a = AccessRecord(uid, proc, po, kind, loc, write)
    if gen is not None:
        a.mark_generated(gen)
    if commit is not None:
        a.mark_committed(commit, 0 if kind.has_read else None)
    if gp is not None:
        a.mark_globally_performed(gp)
    return a


R, W = OpKind.DATA_READ, OpKind.DATA_WRITE
SW, SRW = OpKind.SYNC_WRITE, OpKind.SYNC_RMW


class TestCondition1:
    def test_program_order_generation_ok(self):
        run = FakeRun([[
            access(0, 0, 0, W, "x", gen=1, commit=2, gp=3, write=1),
            access(1, 0, 1, W, "y", gen=2, commit=4, gp=5, write=1),
        ]])
        assert not check_conditions(run).violations.get("condition1")

    def test_out_of_order_generation_flagged(self):
        run = FakeRun([[
            access(0, 0, 0, W, "x", gen=5, commit=6, gp=7, write=1),
            access(1, 0, 1, W, "y", gen=2, commit=4, gp=5, write=1),
        ]])
        assert check_conditions(run).violations["condition1"]


class TestCondition2:
    def test_same_cycle_cross_processor_writes_flagged(self):
        run = FakeRun([
            [access(0, 0, 0, W, "x", gen=0, commit=5, gp=6, write=1)],
            [access(1, 1, 0, W, "x", gen=0, commit=5, gp=7, write=2)],
        ])
        assert check_conditions(run).violations["condition2"]

    def test_distinct_commit_cycles_ok(self):
        run = FakeRun([
            [access(0, 0, 0, W, "x", gen=0, commit=5, gp=6, write=1)],
            [access(1, 1, 0, W, "x", gen=0, commit=8, gp=9, write=2)],
        ])
        assert not check_conditions(run).violations.get("condition2")


class TestCondition3:
    def test_gp_order_must_match_commit_order(self):
        run = FakeRun([
            [access(0, 0, 0, SW, "s", gen=0, commit=5, gp=20, write=0)],
            [access(1, 1, 0, SW, "s", gen=0, commit=25, gp=12, write=1)],
        ])
        assert check_conditions(run).violations["condition3"]

    def test_earlier_sync_must_be_gp_before_later_commits(self):
        run = FakeRun([
            [access(0, 0, 0, SW, "s", gen=0, commit=5, gp=30, write=0)],
            [access(1, 1, 0, SW, "s", gen=0, commit=10, gp=35, write=1)],
        ])
        report = check_conditions(run)
        assert report.violations["condition3"]

    def test_clean_serialized_syncs(self):
        run = FakeRun([
            [access(0, 0, 0, SW, "s", gen=0, commit=5, gp=8, write=0)],
            [access(1, 1, 0, SW, "s", gen=0, commit=10, gp=14, write=1)],
        ])
        assert not check_conditions(run).violations.get("condition3")


class TestCondition4:
    def test_access_generated_before_sync_commit_flagged(self):
        run = FakeRun([[
            access(0, 0, 0, SW, "s", gen=0, commit=10, gp=12, write=0),
            access(1, 0, 1, W, "x", gen=5, commit=7, gp=8, write=1),
        ]])
        assert check_conditions(run).violations["condition4"]

    def test_access_after_sync_commit_ok(self):
        run = FakeRun([[
            access(0, 0, 0, SW, "s", gen=0, commit=10, gp=12, write=0),
            access(1, 0, 1, W, "x", gen=11, commit=13, gp=14, write=1),
        ]])
        assert not check_conditions(run).violations.get("condition4")


class TestCondition5:
    def test_remote_sync_commits_before_writes_gp_flagged(self):
        """P0's write (po-before its sync) globally performs at 50, yet
        P1's sync on the same location commits at 20."""
        run = FakeRun([
            [
                access(0, 0, 0, W, "x", gen=0, commit=2, gp=50, write=1),
                access(1, 0, 1, SRW, "s", gen=3, commit=5, gp=6, write=1),
            ],
            [access(2, 1, 0, SRW, "s", gen=0, commit=20, gp=22, write=1)],
        ])
        assert check_conditions(run).violations["condition5"]

    def test_remote_sync_after_writes_gp_ok(self):
        run = FakeRun([
            [
                access(0, 0, 0, W, "x", gen=0, commit=2, gp=10, write=1),
                access(1, 0, 1, SRW, "s", gen=3, commit=5, gp=6, write=1),
            ],
            [access(2, 1, 0, SRW, "s", gen=0, commit=20, gp=22, write=1)],
        ])
        assert not check_conditions(run).violations.get("condition5")

    def test_same_processor_syncs_exempt(self):
        run = FakeRun([[
            access(0, 0, 0, W, "x", gen=0, commit=2, gp=50, write=1),
            access(1, 0, 1, SRW, "s", gen=3, commit=5, gp=6, write=1),
            access(2, 0, 2, SRW, "s", gen=7, commit=9, gp=11, write=1),
        ]])
        assert not check_conditions(run).violations.get("condition5")


class TestDrf1Demotion:
    def test_read_sync_exempt_when_drf1_optimized(self):
        """Concurrent read-only syncs violate condition 3 under DRF0 rules
        but are demoted to data reads under the DRF1 optimization."""
        run = FakeRun([
            [access(0, 0, 0, OpKind.SYNC_READ, "s", gen=0, commit=5, gp=20)],
            [access(1, 1, 0, OpKind.SYNC_READ, "s", gen=0, commit=8, gp=9)],
        ])
        strict = check_conditions(run)
        assert strict.violations["condition3"]
        relaxed = check_conditions(run, drf1_optimized=True)
        assert not relaxed.violations.get("condition3")
