"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCatalogCommand:
    def test_catalog_lists_tests_and_workloads(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "SB" in out and "MP+sync" in out
        assert "barrier" in out and "prodcons" in out


class TestDrf0Command:
    def test_racy_program_exits_nonzero(self, capsys):
        assert main(["drf0", "SB"]) == 1
        out = capsys.readouterr().out
        assert "violates DRF0" in out
        assert "race" in out

    def test_clean_program_exits_zero(self, capsys):
        assert main(["drf0", "MP+sync"]) == 0
        assert "obeys DRF0" in capsys.readouterr().out

    def test_witness_flag_prints_execution(self, capsys):
        main(["drf0", "SB", "--witness"])
        out = capsys.readouterr().out
        assert "witnessing idealized execution" in out

    def test_sampled_mode(self, capsys):
        assert main(["drf0", "lock", "--sampled", "--seeds", "5"]) == 0
        assert "sampled" in capsys.readouterr().out

    def test_unknown_program_rejected(self):
        with pytest.raises(SystemExit):
            main(["drf0", "not-a-program"])


class TestModelsCommand:
    def test_table_shape(self, capsys):
        assert main(["models", "SB", "MP"]) == 0
        out = capsys.readouterr().out
        assert "SC" in out and "TSO" in out and "WO-DRF0" in out
        # SB: TSO admits, SC does not
        sb_line = next(l for l in out.splitlines() if l.startswith("SB"))
        assert "no" in sb_line and "yes" in sb_line

    def test_unsupported_program_shows_dash(self, capsys):
        main(["models", "MP+sync"])
        line = next(
            l for l in capsys.readouterr().out.splitlines()
            if l.startswith("MP+sync")
        )
        assert "-" in line


class TestSimulateCommand:
    def test_simulate_reports_cycles_and_verdict(self, capsys):
        assert main(["simulate", "TAS", "--policy", "adve-hill"]) == 0
        out = capsys.readouterr().out
        assert "cycles" in out
        assert "appears SC: True" in out

    def test_simulate_workload_names(self, capsys):
        assert main(["simulate", "prodcons", "--policy", "sc"]) == 0
        assert "appears SC: True" in capsys.readouterr().out

    def test_cacheless_run(self, capsys):
        assert main(["simulate", "SB", "--policy", "sc", "--no-caches"]) == 0

    def test_capacity_option(self, capsys):
        assert main(["simulate", "lock", "--capacity", "2"]) == 0
        assert "appears SC: True" in capsys.readouterr().out


class TestLitmusCommand:
    def test_contract_ok_for_weak_hardware(self, capsys):
        code = main(
            ["litmus", "TAS", "MP+sync", "--policy", "adve-hill", "--seeds", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ok" in out and "VIOLATED" not in out

    def test_relaxed_hardware_on_racy_test_is_not_a_violation(self, capsys):
        code = main(["litmus", "SB", "--policy", "relaxed", "--seeds", "25"])
        assert code == 0  # racy program: Definition 2 not violated
        assert "observed" in capsys.readouterr().out


class TestDelaysCommand:
    def test_delay_pairs_printed(self, capsys):
        assert main(["delays", "SB"]) == 0
        out = capsys.readouterr().out
        assert "2 delay pair(s)" in out

    def test_no_delays_needed(self, capsys):
        assert main(["delays", "disjoint"]) == 0
        assert "no delay pairs" in capsys.readouterr().out

    def test_branchy_program_rejected(self):
        with pytest.raises(SystemExit):
            main(["delays", "MP+sync"])


class TestDiffCommand:
    def test_clean_campaign_exits_zero(self, capsys):
        code = main(["diff", "--programs", "4", "--hw-seeds", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "4 programs" in out and "0 disagreements" in out

    def test_report_file(self, tmp_path, capsys):
        report = tmp_path / "diff.json"
        code = main(
            ["diff", "--programs", "3", "--report", str(report)]
        )
        assert code == 0
        import json

        data = json.loads(report.read_text())
        assert data["ok"] is True and data["programs_run"] == 3

    def test_parallel_matches_serial(self, capsys):
        assert main(["diff", "--programs", "4", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out.splitlines()[0]
        assert main(["diff", "--programs", "4", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out.splitlines()[0]
        # Same counts either way; only the memo-hit tallies may differ.
        assert parallel.split("(")[0] == serial.split("(")[0]

    def test_usage_errors_exit_2(self):
        with pytest.raises(SystemExit) as err:
            main(["diff", "--jobs", "-1"])
        assert err.value.code == 2
        with pytest.raises(SystemExit) as err:
            main(["diff", "--hw-seeds", "0"])
        assert err.value.code == 2
