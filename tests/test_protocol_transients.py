"""Directed tests for coherence-protocol transient races.

Uses a hand-controlled interconnect so message delivery order can be
forced, exercising the windows the unordered network opens:

* an INVAL overtaking the DATA reply of an outstanding read,
* a forwarded request overtaking the owner's own DATA_EX,
* NACK-and-retry round trips,
* stale write-backs racing ownership transfers.
"""

from collections import deque

import pytest

from repro.core.types import OpKind
from repro.sim.access import AccessRecord
from repro.sim.cache import CacheController, LineState
from repro.sim.directory import Directory
from repro.sim.events import Simulator
from repro.sim.messages import Message, MsgKind
from repro.sim.network import Interconnect


class ManualNetwork(Interconnect):
    """Messages queue; the test decides what gets delivered when."""

    def __init__(self, sim: Simulator) -> None:
        super().__init__(sim)
        self.queue = deque()

    def send(self, message: Message) -> None:
        self.messages_sent += 1
        self.queue.append(message)

    def deliver_next(self, kind=None, dst=None) -> Message:
        """Deliver (and return) the first queued message matching the filter."""
        for i, message in enumerate(self.queue):
            if kind is not None and message.kind is not kind:
                continue
            if dst is not None and message.dst != dst:
                continue
            del self.queue[i]
            self._deliver(message)
            return message
        raise AssertionError(
            f"no queued message kind={kind} dst={dst}; queue="
            + ", ".join(str(m) for m in self.queue)
        )

    def drain(self) -> None:
        """Deliver everything in FIFO order until quiescent."""
        while self.queue:
            message = self.queue.popleft()
            self._deliver(message)
            self.sim.run()

    def kinds(self):
        return [m.kind for m in self.queue]


def rig(num_caches=2, memory=None, **cache_kwargs):
    sim = Simulator()
    net = ManualNetwork(sim)
    directory = Directory(sim, net, "dir", memory or {"x": 0, "s": 1}, latency=1)
    caches = [
        CacheController(sim, net, f"proc{i}", "dir", hit_latency=1, **cache_kwargs)
        for i in range(num_caches)
    ]
    return sim, net, directory, caches


def access(uid, kind, loc, write=None, proc=0, po=0):
    a = AccessRecord(uid, proc, po, kind, loc, write)
    a.mark_generated(0)
    return a


class TestInvalOvertakesData:
    def test_read_commits_with_pre_invalidation_value_but_does_not_install(self):
        sim, net, directory, caches = rig()
        # proc1 reads x -> GETS queued.
        r = access(0, OpKind.DATA_READ, "x", proc=1)
        caches[1].submit(r)
        net.deliver_next(MsgKind.GETS)          # directory processes GETS
        sim.run()                               # DATA now queued to proc1
        assert MsgKind.DATA in net.kinds()
        # Before DATA arrives, proc0 writes x: directory sends DATA_EX to
        # proc0 and INVAL to proc1 (a sharer since the GETS was processed).
        w = access(1, OpKind.DATA_WRITE, "x", write=9, proc=0)
        caches[0].submit(w)
        net.deliver_next(MsgKind.GETX)
        sim.run()
        # Force the race: INVAL reaches proc1 before its DATA.
        net.deliver_next(MsgKind.INVAL, dst="proc1")
        sim.run()
        assert caches[1].line("x").state is LineState.INVALID
        net.deliver_next(MsgKind.DATA, dst="proc1")
        sim.run()
        # The read is committed with the old value (bound before the write
        # serialized) but the stale line was not installed.
        assert r.committed and r.value_read == 0
        assert caches[1].line("x").state is LineState.INVALID
        net.drain()
        assert w.globally_performed

    def test_ack_sent_even_when_line_already_invalid(self):
        sim, net, directory, caches = rig()
        inval = Message(MsgKind.INVAL, src="dir", dst="proc0", location="x")
        net._deliver(inval)
        sim.run()
        assert net.queue and net.queue[-1].kind is MsgKind.INVAL_ACK


class TestForwardOvertakesData:
    def test_forward_waits_for_our_data_then_services(self):
        sim, net, directory, caches = rig()
        w0 = access(0, OpKind.DATA_WRITE, "x", write=5, proc=0)
        caches[0].submit(w0)
        net.deliver_next(MsgKind.GETX)
        sim.run()
        # DATA_EX to proc0 is queued; before delivering it, proc1's GETX is
        # processed and forwarded to proc0 (the new owner per directory).
        w1 = access(1, OpKind.DATA_WRITE, "x", write=7, proc=1)
        caches[1].submit(w1)
        net.deliver_next(MsgKind.GETX)
        sim.run()
        # Deliver the forward *before* proc0's own data: must be parked.
        net.deliver_next(MsgKind.GETX_FWD, dst="proc0")
        sim.run()
        assert not w0.committed
        net.deliver_next(MsgKind.DATA_EX, dst="proc0")
        sim.run()
        # proc0 committed its write, then serviced the parked forward.
        assert w0.committed and w0.value_read is None
        net.drain()
        assert w1.committed and caches[1].line("x").value == 7
        assert caches[0].line("x").state is LineState.INVALID


class TestNackRetry:
    def test_nacked_sync_decrements_counter_and_retries(self):
        sim, net, directory, caches = rig(
            use_reserve_bits=True, sync_nack=True, nack_retry_delay=2,
            memory={"s": 1, "d": 0},
        )
        # proc1 warms d so proc0's write needs an ack round.
        warm = access(0, OpKind.DATA_READ, "d", proc=1)
        caches[1].submit(warm)
        net.drain()
        # proc0: slow write to d, then sync on s (reserve set at commit).
        w = access(1, OpKind.DATA_WRITE, "d", write=1, proc=0)
        s = access(2, OpKind.SYNC_WRITE, "s", write=0, proc=0, po=1)
        caches[0].submit(w)
        caches[0].submit(s)
        net.deliver_next(MsgKind.GETX)           # d at directory
        sim.run()
        net.deliver_next(MsgKind.GETX)           # s at directory
        sim.run()
        net.deliver_next(MsgKind.DATA_EX, dst="proc0")  # d data (acks pending)
        sim.run()
        net.deliver_next(MsgKind.DATA_EX, dst="proc0")  # s data -> sync commits
        sim.run()
        assert s.committed
        assert caches[0].line("s").reserved      # w not globally performed yet
        # proc1 tries to sync on s: forwarded to proc0, which NACKs.
        remote = access(3, OpKind.SYNC_RMW, "s", write=1, proc=1, po=1)
        caches[1].submit(remote)
        net.deliver_next(MsgKind.GETX)
        sim.run()
        net.deliver_next(MsgKind.GETX_FWD, dst="proc0")
        sim.run()
        assert MsgKind.NACK in net.kinds()
        net.deliver_next(MsgKind.NACK, dst="proc1")
        sim.run()  # the NACK decremented the counter; the retry timer has
        # already re-fired inside run(), re-issuing a fresh GETX
        retries = [
            m for m in net.queue
            if m.kind is MsgKind.GETX and m.src == "proc1" and m.location == "s"
        ]
        assert retries, "nacked sync should retry with a new GETX"
        net.deliver_next(MsgKind.NACK_DONE)
        sim.run()
        # Let the write's invalidation round finish; reserve clears.
        net.drain()
        assert w.globally_performed
        assert not caches[0].line("s").reserved
        assert remote.committed and remote.value_read == 0

    def test_stall_mode_queues_instead(self):
        sim, net, directory, caches = rig(
            use_reserve_bits=True, sync_nack=False,
            memory={"s": 1, "d": 0},
        )
        warm = access(0, OpKind.DATA_READ, "d", proc=1)
        caches[1].submit(warm)
        net.drain()
        w = access(1, OpKind.DATA_WRITE, "d", write=1, proc=0)
        s = access(2, OpKind.SYNC_WRITE, "s", write=0, proc=0, po=1)
        caches[0].submit(w)
        caches[0].submit(s)
        net.deliver_next(MsgKind.GETX)
        sim.run()
        net.deliver_next(MsgKind.GETX)
        sim.run()
        net.deliver_next(MsgKind.DATA_EX, dst="proc0")
        sim.run()
        net.deliver_next(MsgKind.DATA_EX, dst="proc0")
        sim.run()
        remote = access(3, OpKind.SYNC_RMW, "s", write=1, proc=1, po=1)
        caches[1].submit(remote)
        net.deliver_next(MsgKind.GETX)
        sim.run()
        net.deliver_next(MsgKind.GETX_FWD, dst="proc0")
        sim.run()
        assert caches[0]._stalled_forwards      # queued, not nacked
        assert MsgKind.NACK not in net.kinds()
        net.drain()
        assert remote.committed                  # released at counter == 0


class TestEvictionTransients:
    def test_forward_on_evicting_line_is_serviced_and_wb_goes_stale(self):
        sim, net, directory, caches = rig(capacity=1, memory={"x": 0, "y": 0})
        w = access(0, OpKind.DATA_WRITE, "x", write=5, proc=0)
        caches[0].submit(w)
        net.drain()
        assert caches[0].line("x").state is LineState.MODIFIED
        # proc0 touches y -> must evict x (dirty): WB_EVICT queued.
        r = access(1, OpKind.DATA_READ, "y", proc=0, po=1)
        caches[0].submit(r)
        assert MsgKind.WB_EVICT in net.kinds()
        # Before the WB_EVICT is processed, proc1 requests x; the directory
        # (still believing proc0 owns x) forwards -- deliver the GETX first.
        r1 = access(2, OpKind.DATA_READ, "x", proc=1)
        caches[1].submit(r1)
        net.deliver_next(MsgKind.GETS, dst="dir")
        sim.run()
        net.deliver_next(MsgKind.GETS_FWD, dst="proc0")
        sim.run()
        # proc0 serviced the forward from its still-present copy.
        net.deliver_next(MsgKind.DATA, dst="proc1")
        sim.run()
        assert r1.committed and r1.value_read == 5
        # Now the stale WB_EVICT reaches the directory: acknowledged, no-op.
        net.drain()
        assert r.committed  # the eviction eventually unblocked the y read
        assert directory.memory["x"] == 5  # via the WB_DATA downgrade
