"""Unit tests for the memory module, cacheless port, cache, and directory."""

import pytest

from repro.core.types import OpKind
from repro.sim.access import AccessRecord
from repro.sim.cache import CacheController, LineState
from repro.sim.directory import Directory
from repro.sim.events import Simulator
from repro.sim.memory import CachelessPort, MemoryModule
from repro.sim.messages import Message, MsgKind
from repro.sim.network import GeneralNetwork


def make_access(uid, kind, loc, write=None, proc=0, po=0):
    return AccessRecord(uid, proc, po, kind, loc, write)


def cacheless_rig(write_buffer=True, drain_delay=3, jitter=0, seed=0):
    sim = Simulator()
    net = GeneralNetwork(sim, latency=2, jitter=jitter, seed=seed)
    mem = MemoryModule(sim, net, "mem", {"x": 0, "y": 7}, latency=2)
    port = CachelessPort(
        sim, net, "proc0", "mem", write_buffer=write_buffer, drain_delay=drain_delay
    )
    return sim, net, mem, port


class TestMemoryModuleAndPort:
    def test_read_returns_memory_value(self):
        sim, net, mem, port = cacheless_rig()
        a = make_access(0, OpKind.DATA_READ, "y")
        a.mark_generated(0)
        port.submit(a)
        sim.run()
        assert a.value_read == 7
        assert a.committed and a.globally_performed

    def test_write_applies_and_acks(self):
        sim, net, mem, port = cacheless_rig()
        a = make_access(0, OpKind.DATA_WRITE, "x", write=5)
        a.mark_generated(0)
        port.submit(a)
        sim.run()
        assert mem.values["x"] == 5
        assert a.globally_performed

    def test_buffered_write_commits_immediately(self):
        sim, net, mem, port = cacheless_rig(drain_delay=10)
        a = make_access(0, OpKind.DATA_WRITE, "x", write=5)
        a.mark_generated(0)
        port.submit(a)
        assert a.committed  # store buffer commit point
        assert not a.globally_performed
        sim.run()
        assert a.globally_performed and mem.values["x"] == 5

    def test_store_to_load_forwarding(self):
        sim, net, mem, port = cacheless_rig(drain_delay=50)
        w = make_access(0, OpKind.DATA_WRITE, "x", write=9)
        w.mark_generated(0)
        port.submit(w)
        r = make_access(1, OpKind.DATA_READ, "x")
        r.mark_generated(0)
        port.submit(r)
        # forwarded synchronously from the buffer
        assert r.value_read == 9

    def test_read_bypasses_buffered_write_to_other_location(self):
        sim, net, mem, port = cacheless_rig(drain_delay=50)
        w = make_access(0, OpKind.DATA_WRITE, "x", write=9)
        w.mark_generated(0)
        port.submit(w)
        r = make_access(1, OpKind.DATA_READ, "y")
        r.mark_generated(0)
        port.submit(r)
        sim.run(until=20)
        assert r.committed and r.value_read == 7
        assert not w.globally_performed  # still sitting in the buffer

    def test_rmw_is_atomic_at_module(self):
        sim, net, mem, port = cacheless_rig()
        a = make_access(0, OpKind.SYNC_RMW, "x", write=1)
        a.mark_generated(0)
        port.submit(a)
        sim.run()
        assert a.value_read == 0
        assert mem.values["x"] == 1

    def test_sync_write_not_buffered(self):
        sim, net, mem, port = cacheless_rig(drain_delay=50)
        a = make_access(0, OpKind.SYNC_WRITE, "s", write=0)
        a.mark_generated(0)
        port.submit(a)
        assert not a.committed  # goes straight to memory, no buffer commit
        sim.run()
        assert a.globally_performed

    def test_write_buffer_disabled_sends_directly(self):
        sim, net, mem, port = cacheless_rig(write_buffer=False)
        a = make_access(0, OpKind.DATA_WRITE, "x", write=3)
        a.mark_generated(0)
        port.submit(a)
        assert not a.committed
        sim.run()
        assert a.committed and a.globally_performed


def cache_rig(num_caches=2, jitter=0, seed=0, use_reserve=False, drf1=False,
              miss_limit=None, memory=None):
    sim = Simulator()
    net = GeneralNetwork(sim, latency=2, jitter=jitter, seed=seed)
    directory = Directory(sim, net, "dir", memory or {"x": 0, "s": 1}, latency=2)
    caches = [
        CacheController(
            sim,
            net,
            f"proc{i}",
            "dir",
            hit_latency=1,
            use_reserve_bits=use_reserve,
            drf1_optimized=drf1,
            reserved_miss_limit=miss_limit,
        )
        for i in range(num_caches)
    ]
    return sim, net, directory, caches


class TestCacheProtocol:
    def test_read_miss_installs_shared(self):
        sim, net, directory, caches = cache_rig()
        a = make_access(0, OpKind.DATA_READ, "x")
        a.mark_generated(0)
        caches[0].submit(a)
        sim.run()
        assert a.value_read == 0
        assert caches[0].line("x").state is LineState.SHARED
        assert directory.entry("x").sharers == {"proc0"}

    def test_write_miss_installs_modified(self):
        sim, net, directory, caches = cache_rig()
        a = make_access(0, OpKind.DATA_WRITE, "x", write=4)
        a.mark_generated(0)
        caches[0].submit(a)
        sim.run()
        line = caches[0].line("x")
        assert line.state is LineState.MODIFIED and line.value == 4
        assert directory.entry("x").owner == "proc0"
        assert a.globally_performed  # uncached line: GP on receipt

    def test_write_hit_on_modified_is_immediate_gp(self):
        sim, net, directory, caches = cache_rig()
        w1 = make_access(0, OpKind.DATA_WRITE, "x", write=1)
        w1.mark_generated(0)
        caches[0].submit(w1)
        sim.run()
        w2 = make_access(1, OpKind.DATA_WRITE, "x", write=2, po=1)
        w2.mark_generated(sim.now)
        caches[0].submit(w2)
        sim.run()
        assert caches[0].hits == 1
        assert w2.globally_performed
        assert caches[0].line("x").value == 2

    def test_upgrade_invalidates_sharer(self):
        sim, net, directory, caches = cache_rig()
        r0 = make_access(0, OpKind.DATA_READ, "x")
        r1 = make_access(1, OpKind.DATA_READ, "x", proc=1)
        for cache, access in zip(caches, (r0, r1)):
            access.mark_generated(0)
            cache.submit(access)
        sim.run()
        assert directory.entry("x").sharers == {"proc0", "proc1"}
        w = make_access(2, OpKind.DATA_WRITE, "x", write=9, po=1)
        w.mark_generated(sim.now)
        caches[0].submit(w)
        sim.run()
        assert caches[1].line("x").state is LineState.INVALID
        assert w.committed and w.globally_performed
        assert directory.entry("x").owner == "proc0"
        assert w.gp_time >= w.commit_time  # commit at grant, GP at acks

    def test_commit_precedes_gp_for_contested_write(self):
        """The commit point ('modifies the copy in its cache') comes before
        global performance (all invalidation acks collected)."""
        sim, net, directory, caches = cache_rig()
        r1 = make_access(0, OpKind.DATA_READ, "x", proc=1)
        r1.mark_generated(0)
        caches[1].submit(r1)
        sim.run()
        w = make_access(1, OpKind.DATA_WRITE, "x", write=9)
        w.mark_generated(sim.now)
        caches[0].submit(w)
        sim.run()
        assert w.commit_time < w.gp_time

    def test_read_forwarded_from_owner(self):
        sim, net, directory, caches = cache_rig()
        w = make_access(0, OpKind.DATA_WRITE, "x", write=6)
        w.mark_generated(0)
        caches[0].submit(w)
        sim.run()
        r = make_access(1, OpKind.DATA_READ, "x", proc=1)
        r.mark_generated(sim.now)
        caches[1].submit(r)
        sim.run()
        assert r.value_read == 6
        assert caches[0].line("x").state is LineState.SHARED
        assert directory.entry("x").owner is None
        assert directory.entry("x").sharers == {"proc0", "proc1"}
        assert directory.memory["x"] == 6  # write-back happened

    def test_write_forwarded_ownership_transfer(self):
        sim, net, directory, caches = cache_rig()
        w0 = make_access(0, OpKind.DATA_WRITE, "x", write=6)
        w0.mark_generated(0)
        caches[0].submit(w0)
        sim.run()
        w1 = make_access(1, OpKind.DATA_WRITE, "x", write=7, proc=1)
        w1.mark_generated(sim.now)
        caches[1].submit(w1)
        sim.run()
        assert caches[0].line("x").state is LineState.INVALID
        assert caches[1].line("x").value == 7
        assert directory.entry("x").owner == "proc1"
        assert w1.globally_performed  # previously-exclusive line: GP on receipt

    def test_rmw_reads_old_writes_new(self):
        sim, net, directory, caches = cache_rig()
        a = make_access(0, OpKind.SYNC_RMW, "s", write=1)
        a.mark_generated(0)
        caches[0].submit(a)
        sim.run()
        assert a.value_read == 1  # initial value of s
        assert caches[0].line("s").value == 1

    def test_local_accesses_queue_behind_transaction(self):
        sim, net, directory, caches = cache_rig()
        a1 = make_access(0, OpKind.DATA_READ, "x")
        a2 = make_access(1, OpKind.DATA_READ, "x", po=1)
        a1.mark_generated(0)
        a2.mark_generated(0)
        caches[0].submit(a1)
        caches[0].submit(a2)  # queued: same line, transaction open
        sim.run()
        assert a1.committed and a2.committed
        assert caches[0].misses == 1  # second was a hit after install

    def test_deep_same_line_queue_fully_drains(self):
        """Regression (hypothesis-found): several accesses queued behind one
        transaction must all complete even when the later ones are hits."""
        sim, net, directory, caches = cache_rig()
        accesses = [
            make_access(0, OpKind.DATA_WRITE, "x", write=1),
            make_access(1, OpKind.DATA_WRITE, "x", write=2, po=1),
            make_access(2, OpKind.DATA_READ, "x", po=2),
            make_access(3, OpKind.DATA_WRITE, "x", write=3, po=3),
        ]
        for a in accesses:
            a.mark_generated(0)
            caches[0].submit(a)
        sim.run()
        assert all(a.committed for a in accesses)
        assert accesses[2].value_read == 2  # per-line program order held
        assert caches[0].line("x").value == 3


class TestReserveBits:
    def test_sync_commit_with_outstanding_write_sets_reserve(self):
        sim, net, directory, caches = cache_rig(use_reserve=True,
                                                memory={"x": 0, "s": 1, "d": 0})
        # Give proc1 a shared copy of d so proc0's write needs an ack round.
        warm = make_access(0, OpKind.DATA_READ, "d", proc=1)
        warm.mark_generated(0)
        caches[1].submit(warm)
        sim.run()
        w = make_access(1, OpKind.DATA_WRITE, "d", write=1)
        w.mark_generated(sim.now)
        caches[0].submit(w)
        s = make_access(2, OpKind.SYNC_WRITE, "s", write=0, po=1)
        s.mark_generated(sim.now)
        caches[0].submit(s)
        sim.run(until=sim.now + 6)  # enough for s, not for d's ack round trip
        if s.committed and not w.globally_performed:
            assert caches[0].line("s").reserved
        sim.run()
        # when the counter drains, all reserve bits clear
        assert not caches[0].line("s").reserved
        assert not caches[0].reserved_lines

    def test_forward_to_reserved_line_stalls_until_counter_zero(self):
        sim, net, directory, caches = cache_rig(use_reserve=True,
                                                memory={"x": 0, "s": 1, "d": 0})
        warm = make_access(0, OpKind.DATA_READ, "d", proc=1)
        warm.mark_generated(0)
        caches[1].submit(warm)
        sim.run()
        w = make_access(1, OpKind.DATA_WRITE, "d", write=1)
        s = make_access(2, OpKind.SYNC_WRITE, "s", write=0, po=1)
        w.mark_generated(sim.now)
        s.mark_generated(sim.now)
        caches[0].submit(w)
        caches[0].submit(s)
        remote = make_access(3, OpKind.SYNC_RMW, "s", write=1, proc=1)
        remote.mark_generated(sim.now)
        caches[1].submit(remote)
        sim.run()
        # Condition 5 observable consequence: the remote sync commits only
        # after proc0's earlier write is globally performed.
        assert remote.committed
        assert w.gp_time <= remote.commit_time
        assert remote.value_read == 0  # saw the Unset value

    def test_drf1_optimized_sync_read_takes_read_path(self):
        sim, net, directory, caches = cache_rig(use_reserve=True, drf1=True)
        t = make_access(0, OpKind.SYNC_READ, "s")
        t.mark_generated(0)
        caches[0].submit(t)
        sim.run()
        assert caches[0].line("s").state is LineState.SHARED
        assert t.value_read == 1

    def test_non_optimized_sync_read_takes_write_path(self):
        sim, net, directory, caches = cache_rig(use_reserve=True, drf1=False)
        t = make_access(0, OpKind.SYNC_READ, "s")
        t.mark_generated(0)
        caches[0].submit(t)
        sim.run()
        assert caches[0].line("s").state is LineState.MODIFIED
        assert t.value_read == 1

    def test_reserved_miss_limit_defers_misses(self):
        sim, net, directory, caches = cache_rig(
            use_reserve=True, miss_limit=1,
            memory={"s": 1, "d": 0, "e": 0, "f": 0},
        )
        warm = make_access(0, OpKind.DATA_READ, "d", proc=1)
        warm.mark_generated(0)
        caches[1].submit(warm)
        sim.run()
        w = make_access(1, OpKind.DATA_WRITE, "d", write=1)
        s = make_access(2, OpKind.SYNC_WRITE, "s", write=0, po=1)
        m1 = make_access(3, OpKind.DATA_READ, "e", po=2)
        m2 = make_access(4, OpKind.DATA_READ, "f", po=3)
        for a in (w, s, m1, m2):
            a.mark_generated(sim.now)
            caches[0].submit(a)
        sim.run()
        # everything still completes (the limit only defers, never drops)
        assert m1.committed and m2.committed and s.globally_performed


class TestDirectoryInvariants:
    def test_per_line_serialization_queues_requests(self):
        sim, net, directory, caches = cache_rig(num_caches=3)
        accesses = []
        for i in range(3):
            a = make_access(i, OpKind.DATA_WRITE, "x", write=i + 1, proc=i)
            a.mark_generated(0)
            caches[i].submit(a)
            accesses.append(a)
        sim.run()
        # all three writes complete and exactly one cache owns the line
        assert all(a.globally_performed for a in accesses)
        owner = directory.entry("x").owner
        owners = [c for c in caches if c.line("x").state is LineState.MODIFIED]
        assert len(owners) == 1 and owners[0].node_id == owner

    def test_final_value_prefers_modified_copy(self):
        sim, net, directory, caches = cache_rig()
        w = make_access(0, OpKind.DATA_WRITE, "x", write=5)
        w.mark_generated(0)
        caches[0].submit(w)
        sim.run()
        assert directory.final_value("x", caches) == 5
        assert directory.memory["x"] == 0  # memory itself is stale

    def test_invalidation_counts(self):
        sim, net, directory, caches = cache_rig(num_caches=3)
        for i in range(3):
            r = make_access(i, OpKind.DATA_READ, "x", proc=i)
            r.mark_generated(0)
            caches[i].submit(r)
        sim.run()
        w = make_access(3, OpKind.DATA_WRITE, "x", write=1, po=1)
        w.mark_generated(sim.now)
        caches[0].submit(w)
        sim.run()
        assert directory.invalidations_sent == 2  # the two other sharers
