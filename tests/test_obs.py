"""Tests for the observability layer: tracing, metrics, export, attribution.

The heavy lifting is the two end-to-end properties:

* **exactness** -- on every hardware run, the per-cause stall buckets sum
  to exactly ``gate_stall_cycles + block_stall_cycles`` for every
  processor (no stalled cycle unattributed, none double-counted);
* **Figure 3** -- on the critical-section workload, Definition 1 charges
  the release-side stall to the *releasing* processor while the Adve-Hill
  implementation removes it (and, where the timing produces NACKs,
  charges the wait to the *acquiring* processor's reserve-bit retries).
"""

import json

import pytest

from repro.core.drf0 import check_program
from repro.core.sc import ExplorationConfig, explore
from repro.hw import POLICY_FACTORIES
from repro.litmus import all_tests
from repro.litmus.figures import figure3_program
from repro.obs import (
    CAUSE_ORDER,
    MetricsRegistry,
    NULL_TRACER,
    RecordingTracer,
    chrome_trace,
    explorer_metrics,
    render_stall_comparison,
    render_stall_table,
    run_metrics,
    stall_breakdown,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
    write_jsonl,
)
from repro.sim.system import FIGURE1_CONFIGS, SystemConfig, run_on_hardware


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------


class TestTracer:
    def test_null_tracer_is_disabled_and_silent(self):
        assert NULL_TRACER.enabled is False
        NULL_TRACER.span("c", "n", "t", 0, 5)
        NULL_TRACER.instant("c", "n", "t", 0)
        NULL_TRACER.counter("c", "n", "t", 0, 1.0)
        with NULL_TRACER.scope("x") as t:
            assert t is NULL_TRACER

    def test_recording_tracer_records_phases(self):
        t = RecordingTracer()
        t.span("cat", "s", "trk", 3, 10, args={"k": 1})
        t.async_span("cat", "a", "trk", 0, 4)
        t.instant("cat", "i", "trk", 7)
        t.counter("cat", "c", "trk", 8, 2.5)
        assert [e.phase for e in t.events] == ["X", "b", "i", "C"]
        assert t.events[0].dur == 7
        assert len(t) == 4

    def test_span_clamps_negative_duration(self):
        t = RecordingTracer()
        t.span("c", "n", "t", 10, 5)
        assert t.events[0].dur == 0

    def test_scope_prefixes_tracks_and_nests(self):
        t = RecordingTracer()
        t.instant("c", "n", "P0", 0)
        with t.scope("run1"):
            t.instant("c", "n", "P0", 1)
            with t.scope("inner"):
                t.instant("c", "n", "P0", 2)
        t.instant("c", "n", "P0", 3)
        assert t.tracks() == ["P0", "run1/P0", "run1/inner/P0"]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counter_histogram_timer(self):
        r = MetricsRegistry()
        r.counter("a").inc()
        r.counter("a").inc(4)
        r.histogram("h").observe(2)
        r.histogram("h").observe(6)
        with r.timer("t").time():
            pass
        d = r.as_dict()
        assert d["counters"]["a"] == 5
        assert d["histograms"]["h"]["count"] == 2
        assert d["histograms"]["h"]["mean"] == 4.0
        assert d["timers"]["t"]["count"] == 1

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x").inc(2)
        b.counter("x").inc(3)
        b.histogram("h").observe(1)
        a.merge(b)
        d = a.as_dict()
        assert d["counters"]["x"] == 5
        assert d["histograms"]["h"]["count"] == 1

    def test_run_metrics_view(self):
        test = next(t for t in all_tests() if t.name == "MP+sync")
        run = run_on_hardware(test.program, POLICY_FACTORIES["sc"]())
        d = run_metrics(run).as_dict()
        assert d["counters"]["sim.runs"] == 1
        assert d["histograms"]["sim.cycles"]["count"] == 1
        total = sum(
            v for k, v in d["counters"].items() if ".stall." in k
        )
        assert total == sum(s.total_stall_cycles for s in run.proc_stats)

    def test_explorer_metrics_view(self):
        test = next(t for t in all_tests() if t.name == "SB")
        ex = explore(test.program)
        d = explorer_metrics(ex.stats).as_dict()
        assert d["counters"]["explorer.states"] == ex.stats.states
        assert d["counters"]["explorer.transitions"] == ex.stats.transitions


# ---------------------------------------------------------------------------
# Export
# ---------------------------------------------------------------------------


class TestExport:
    def _trace(self):
        t = RecordingTracer()
        t.span("cat", "s", "P0", 0, 5, args={"k": "v"})
        t.async_span("net", "msg", "net", 1, 4)
        t.instant("cat", "i", "P1", 2)
        t.counter("cat", "c", "P0", 3, 7)
        return t

    def test_chrome_trace_shape(self):
        obj = chrome_trace(self._trace())
        events = obj["traceEvents"]
        # process metadata + 3 thread metadata + X + b + e + i + C
        phases = [e["ph"] for e in events]
        assert phases.count("M") == 4
        assert phases.count("b") == 1 and phases.count("e") == 1
        b = next(e for e in events if e["ph"] == "b")
        e = next(ev for ev in events if ev["ph"] == "e")
        assert b["id"] == e["id"] and e["ts"] == b["ts"] + 3
        i = next(ev for ev in events if ev["ph"] == "i")
        assert i["s"] == "t"

    def test_validate_accepts_good_rejects_bad(self):
        obj = chrome_trace(self._trace())
        assert validate_chrome_trace(obj) == []
        assert validate_chrome_trace({"nope": 1})
        obj["traceEvents"].append({"ph": "X", "name": "broken"})
        assert validate_chrome_trace(obj)

    def test_validate_flags_unclosed_async(self):
        obj = {
            "traceEvents": [
                {"ph": "b", "cat": "c", "name": "n", "ts": 0, "dur": 1,
                 "pid": 1, "tid": 1, "id": 9},
            ]
        }
        assert any("unclosed" in err for err in validate_chrome_trace(obj))

    def test_file_roundtrip(self, tmp_path):
        t = self._trace()
        path = tmp_path / "trace.json"
        write_chrome_trace(path, t)
        assert validate_chrome_trace_file(path) == []
        jsonl = tmp_path / "trace.jsonl"
        write_jsonl(jsonl, t)
        lines = jsonl.read_text().strip().splitlines()
        assert len(lines) == len(t)
        assert json.loads(lines[0])["phase"] == "X"


# ---------------------------------------------------------------------------
# Stall attribution: the exactness invariant
# ---------------------------------------------------------------------------


def _litmus_runs():
    """Every (policy, litmus, config, seed) hardware run in the sweep."""
    for pname, factory in sorted(POLICY_FACTORIES.items()):
        for test in all_tests():
            for cname, config in sorted(FIGURE1_CONFIGS.items()):
                for seed in (0, 3):
                    try:
                        run = run_on_hardware(
                            test.program, factory(), config.with_seed(seed)
                        )
                    except ValueError:
                        continue  # policy needs caches; config has none
                    yield pname, test.name, cname, seed, run


class TestStallAttribution:
    def test_causes_sum_exactly_on_every_litmus_run(self):
        checked = 0
        for pname, tname, cname, seed, run in _litmus_runs():
            for proc, stats in enumerate(run.proc_stats):
                attributed = sum(stats.stall_by_cause.values())
                coarse = stats.gate_stall_cycles + stats.block_stall_cycles
                assert attributed == coarse, (
                    f"P{proc} of {tname!r} under {pname} on {cname} "
                    f"seed {seed}: attributed {attributed} != coarse {coarse} "
                    f"({dict(stats.stall_by_cause)})"
                )
                checked += 1
        assert checked > 500  # the sweep actually ran

    def test_causes_are_from_the_taxonomy(self):
        for _, _, _, _, run in _litmus_runs():
            for stats in run.proc_stats:
                assert set(stats.stall_by_cause) <= set(CAUSE_ORDER)

    def test_breakdown_and_table_render(self):
        test = next(t for t in all_tests() if t.name == "MP+sync")
        run = run_on_hardware(test.program, POLICY_FACTORIES["definition1"]())
        breakdown = stall_breakdown(run)
        assert len(breakdown) == 2
        assert sum(breakdown[0].values()) == run.proc_stats[0].total_stall_cycles
        table = render_stall_table(run)
        assert "P0" in table and "total" in table


# ---------------------------------------------------------------------------
# Figure 3 regression: who pays for the release?
# ---------------------------------------------------------------------------


class TestFigure3Attribution:
    """Definition 1 stalls the releasing processor; Adve-Hill does not.

    The critical-section workload (``figure3_program`` with cold sharers
    and post-release work) makes the release-side write of x slow to
    globally perform.  Definition 1 must charge that wait to P0 (the
    releaser) as a ``gate:gp`` stall at its unset; the Section-5.3
    implementation lets the unset proceed behind counters/reserve bits,
    so P0 shows *no* gate stall and the whole run finishes earlier.
    """

    @pytest.fixture(scope="class")
    def runs(self):
        program = figure3_program(num_extra_sharers=2, post_release_work=80)
        out = {}
        for seed in range(4):
            config = SystemConfig(seed=seed)
            out[seed] = {
                name: run_on_hardware(
                    program, POLICY_FACTORIES[name](), config
                )
                for name in ("adve-hill", "definition1")
            }
        return out

    def test_definition1_charges_the_releasing_processor(self, runs):
        for seed, by_policy in runs.items():
            d1 = by_policy["definition1"].proc_stats[0]
            assert d1.stall_by_cause.get("gate:gp", 0) > 0, (
                f"seed {seed}: definition1 shows no release-side gate "
                f"stall on P0 ({dict(d1.stall_by_cause)})"
            )

    def test_adve_hill_removes_the_releasers_stall(self, runs):
        for seed, by_policy in runs.items():
            ah = by_policy["adve-hill"].proc_stats[0]
            assert ah.gate_stall_cycles == 0, (
                f"seed {seed}: adve-hill still gates P0 "
                f"({dict(ah.stall_by_cause)})"
            )

    def test_adve_hill_finishes_earlier(self, runs):
        for seed, by_policy in runs.items():
            assert (
                by_policy["adve-hill"].cycles
                < by_policy["definition1"].cycles
            ), f"seed {seed}: no end-to-end win for the Section-5.3 hardware"

    def test_acquirer_absorbs_wait_via_reserve_nacks(self):
        # Deterministic: at seed 7 the acquirer's test&set lands while
        # P0's counter is nonzero, so the reserve bit NACKs it and the
        # wait shows up as block:reserve-nack on P1 -- the acquiring
        # processor, exactly the Section-5.3 shift the paper describes.
        program = figure3_program(num_extra_sharers=2, post_release_work=80)
        run = run_on_hardware(
            program, POLICY_FACTORIES["adve-hill"](), SystemConfig(seed=7)
        )
        p1 = run.proc_stats[1]
        assert p1.stall_by_cause.get("block:reserve-nack", 0) > 0

    def test_comparison_table_renders(self, runs):
        table = render_stall_comparison(
            {name: run for name, run in runs[0].items()}
        )
        assert "gate:gp" in table
        assert "adve-hill" in table and "definition1" in table
        assert "finish:" in table


# ---------------------------------------------------------------------------
# Explorer / engine tracing
# ---------------------------------------------------------------------------


class TestExplorerTracing:
    def test_explore_emits_steps_and_executions(self):
        test = next(t for t in all_tests() if t.name == "SB")
        tracer = RecordingTracer()
        ex = explore(test.program, ExplorationConfig(tracer=tracer))
        kinds = {f"{e.cat}:{e.name}" for e in tracer.events}
        assert "engine:step" in kinds and "engine:undo" in kinds
        assert "explore:execution" in kinds
        executions = [
            e for e in tracer.events if e.name == "execution"
        ]
        assert len(executions) == ex.stats.executions

    def test_dpor_emits_backtracks_and_sleep_cuts(self):
        from repro.core.dpor import iter_dpor_executions
        from repro.core.engine_state import ExplorerStats

        test = next(t for t in all_tests() if t.name == "SB")
        tracer = RecordingTracer()
        stats = ExplorerStats()
        list(
            iter_dpor_executions(
                test.program, ExplorationConfig(tracer=tracer), stats
            )
        )
        kinds = [f"{e.cat}:{e.name}" for e in tracer.events]
        assert "dpor:backtrack-insert" in kinds
        cuts = kinds.count("dpor:sleep-cut")
        assert cuts <= stats.sleep_cuts

    def test_drf0_checker_flows_tracer(self):
        test = next(t for t in all_tests() if t.name == "SB")
        tracer = RecordingTracer()
        check_program(
            test.program, config=ExplorationConfig(max_ops=400, tracer=tracer)
        )
        assert any(e.name == "step" for e in tracer.events)

    def test_untraced_engine_has_no_tracer(self):
        from repro.core.engine_state import EngineState

        test = next(t for t in all_tests() if t.name == "SB")
        engine = EngineState(test.program)
        assert engine.tracer is None  # the fast path stays bare

    def test_trace_is_chrome_exportable(self):
        test = next(t for t in all_tests() if t.name == "MP")
        tracer = RecordingTracer()
        explore(test.program, ExplorationConfig(tracer=tracer))
        assert validate_chrome_trace(chrome_trace(tracer)) == []


class TestEngineObservability:
    def test_engine_counts_tasks_and_snapshots_metrics(self):
        from repro.verify.engine import VerificationEngine

        test = next(t for t in all_tests() if t.name == "SB")
        tracer = RecordingTracer()
        registry = MetricsRegistry()
        engine = VerificationEngine(jobs=1, tracer=tracer, metrics=registry)
        engine.contract_sweep(
            test.program, POLICY_FACTORIES["sc"], seeds=range(3)
        )
        engine.metrics_snapshot()
        counters = registry.as_dict()["counters"]
        assert counters["engine.tasks.run"] >= 1
        assert counters["engine.tasks.judge"] >= 1
        assert (
            counters["engine.sc_cache.hits"]
            + counters["engine.sc_cache.misses"]
            > 0
        )
        kinds = {f"{e.cat}:{e.name}" for e in tracer.events}
        assert kinds >= {"engine:map", "engine:session"}
        assert validate_chrome_trace(chrome_trace(tracer)) == []

    def test_untraced_engine_output_is_identical(self):
        from repro.verify.engine import VerificationEngine

        test = next(t for t in all_tests() if t.name == "MP+sync")
        plain = VerificationEngine(jobs=1).contract_sweep(
            test.program, POLICY_FACTORIES["sc"], seeds=range(3)
        )
        traced = VerificationEngine(
            jobs=1, tracer=RecordingTracer(), metrics=MetricsRegistry()
        ).contract_sweep(test.program, POLICY_FACTORIES["sc"], seeds=range(3))
        assert plain == traced


# ---------------------------------------------------------------------------
# Hardware tracing end-to-end
# ---------------------------------------------------------------------------


class TestHardwareTracing:
    def test_stall_spans_match_stats(self):
        test = next(t for t in all_tests() if t.name == "MP+sync")
        tracer = RecordingTracer()
        run = run_on_hardware(
            test.program, POLICY_FACTORIES["definition1"](), tracer=tracer
        )
        for proc, stats in enumerate(run.proc_stats):
            spans = [
                e for e in tracer.events
                if e.cat == "stall" and e.track == f"P{proc}"
            ]
            assert sum(e.dur for e in spans) == stats.total_stall_cycles

    def test_network_and_directory_events_present(self):
        test = next(t for t in all_tests() if t.name == "MP+sync")
        tracer = RecordingTracer()
        run_on_hardware(
            test.program, POLICY_FACTORIES["sc"](), tracer=tracer
        )
        cats = {e.cat for e in tracer.events}
        assert {"net", "dir", "access"} <= cats

    def test_untraced_run_matches_traced_run(self):
        test = next(t for t in all_tests() if t.name == "TAS")
        factory = POLICY_FACTORIES["adve-hill"]
        plain = run_on_hardware(test.program, factory())
        traced = run_on_hardware(
            test.program, factory(), tracer=RecordingTracer()
        )
        assert plain.result == traced.result
        assert plain.cycles == traced.cycles


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestObsCli:
    def test_simulate_json(self, capsys):
        from repro.cli import main

        assert main(["simulate", "TAS", "--policy", "adve_hill", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["appears_sc"] is True
        assert payload["policy"]
        for stats in payload["proc_stats"]:
            assert sum(stats["stall_by_cause"].values()) == (
                stats["gate_stall_cycles"] + stats["block_stall_cycles"]
            )

    def test_simulate_trace_renders_event_stream(self, capsys):
        from repro.cli import main

        assert main(["simulate", "MP+sync", "--policy", "sc", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "stall attribution" in out
        assert "net:" in out  # the event stream, not the old table

    def test_drf0_json(self, capsys):
        from repro.cli import main

        assert main(["drf0", "SB", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["obeys"] is False
        assert payload["race"]

    def test_trace_out_writes_valid_chrome_trace(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "sim.json"
        assert main(
            ["simulate", "MP+sync", "--trace-out", str(path)]
        ) == 0
        assert validate_chrome_trace_file(path) == []

    def test_profile_command(self, tmp_path, capsys):
        from repro.cli import main

        trace = tmp_path / "profile.json"
        metrics = tmp_path / "metrics.json"
        code = main(
            [
                "profile", "--workload", "critical_section",
                "--policy", "adve_hill",
                "--trace-out", str(trace),
                "--metrics-json", str(metrics),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "adve-hill" in out and "definition1" in out
        assert "gate:gp" in out
        assert validate_chrome_trace_file(trace) == []
        payload = json.loads(metrics.read_text())
        assert any(
            k.startswith("sim.adve-hill.") for k in payload["counters"]
        )

    def test_policy_underscores_accepted(self, capsys):
        from repro.cli import main

        assert main(
            ["simulate", "TAS", "--policy", "release_consistency"]
        ) == 0
