"""Tests for delay-set analysis and the verification harnesses."""

import pytest

from repro.analysis import analyze, delay_pairs_for
from repro.core.types import OpKind
from repro.hw import AdveHillPolicy, Definition1Policy, RelaxedPolicy, SCPolicy
from repro.litmus.catalog import (
    dekker_sync,
    independent_writes,
    message_passing,
    store_buffer,
)
from repro.machine.dsl import ThreadBuilder, build_program
from repro.sim.system import SystemConfig, run_on_hardware
from repro.verify import (
    check_conditions,
    contract_sweep,
    definition2_sweep,
)

from helpers import lock_increment_program, message_passing_program, store_buffer_program


class TestDelaySets:
    def test_sb_needs_both_delays(self):
        analysis = analyze(store_buffer().program)
        assert len(analysis.delay_pairs) == 2
        events = analysis.events
        for a, b in analysis.delay_pairs:
            assert events[a].proc == events[b].proc
            assert events[a].po_index < events[b].po_index

    def test_mp_needs_both_delays(self):
        assert len(delay_pairs_for(message_passing().program)) == 2

    def test_disjoint_needs_none(self):
        assert analyze(independent_writes().program).needs_no_delays

    def test_single_thread_needs_none(self):
        program = build_program(
            [ThreadBuilder().store("x", 1).load("r", "x").store("y", 2)]
        )
        assert analyze(program).needs_no_delays

    def test_sync_accesses_also_analyzed(self):
        """Delay sets are model-agnostic: sync SB still has critical cycles
        (the hardware must order those accesses -- which Definition 1 and
        the paper's implementation both do, via sync handling)."""
        assert len(delay_pairs_for(dekker_sync().program)) == 2

    def test_describe_is_readable(self):
        lines = analyze(store_buffer().program).describe()
        assert len(lines) == 2
        assert all("must complete before" in line for line in lines)

    def test_critical_cycles_recorded(self):
        analysis = analyze(store_buffer().program)
        assert analysis.critical_cycles


class TestConditionMonitor:
    def test_adve_hill_satisfies_all_conditions(self):
        for program in (
            message_passing_program(sync=True),
            lock_increment_program(2),
        ):
            for seed in range(8):
                run = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=seed))
                report = check_conditions(run)
                assert report.ok, report.violations

    def test_sc_satisfies_conditions_trivially(self):
        run = run_on_hardware(
            lock_increment_program(2), SCPolicy(), SystemConfig(seed=0)
        )
        assert check_conditions(run).ok

    def test_relaxed_hardware_violates_condition4(self):
        """The relaxed strawman generates past uncommitted syncs."""
        program = build_program(
            [
                ThreadBuilder().unset("s").store("x", 1),
                ThreadBuilder().load("r", "x"),
            ],
            initial_memory={"s": 1},
            name="sync-then-write",
        )
        violated = False
        for seed in range(20):
            run = run_on_hardware(program, RelaxedPolicy(), SystemConfig(seed=seed))
            report = check_conditions(run)
            if report.violations.get("condition4"):
                violated = True
                break
        assert violated

    def test_report_ok_property(self):
        run = run_on_hardware(
            lock_increment_program(2), AdveHillPolicy(), SystemConfig(seed=0)
        )
        report = check_conditions(run)
        assert bool(report.ok) is True
        report.add("condition2", "synthetic")
        assert not report.ok


class TestSweeps:
    def test_contract_sweep_clean_for_weak_hardware_on_drf0(self):
        report = contract_sweep(
            message_passing_program(sync=True),
            AdveHillPolicy,
            seeds=range(10),
            check_51_conditions=True,
        )
        assert report.appears_sc
        assert not report.condition_violations
        assert report.mean_cycles > 0

    def test_contract_sweep_detects_relaxed_violation(self):
        report = contract_sweep(
            store_buffer_program(), RelaxedPolicy, seeds=range(40)
        )
        assert not report.appears_sc
        assert report.non_sc_results

    def test_definition2_sweep_table(self):
        evidence = definition2_sweep(
            [message_passing_program(sync=True), store_buffer_program()],
            {"adve-hill": AdveHillPolicy, "definition1": Definition1Policy},
            seeds=range(8),
            exhaustive_drf0=True,
        )
        assert len(evidence.rows) == 4
        assert evidence.contract_holds
        drf_flags = {row["program"]: row["program_drf0"] for row in evidence.rows}
        assert drf_flags["mp-sync"] is True
        assert drf_flags["store-buffer"] is False
