"""Smoke tests: the example scripts must run end to end.

The slow sweeps (`litmus_explorer`, `hardware_bug_hunt`) are exercised
through their building blocks elsewhere; here the fast examples run whole
and the slow ones are imported and spot-checked.
"""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def load_example(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFastExamples:
    def test_quickstart_runs(self, capsys):
        load_example("quickstart").main()
        out = capsys.readouterr().out
        assert "obeys DRF0: True" in out
        assert out.count("True") >= 3  # all three implementations appear SC

    def test_race_detection_runs(self, capsys):
        load_example("race_detection").main()
        out = capsys.readouterr().out
        assert "'buggy-handoff' obeys DRF0: False" in out
        assert "'fixed-handoff' obeys DRF0: True" in out

    def test_asynchronous_relaxation_runs(self, capsys):
        load_example("asynchronous_relaxation").main()
        out = capsys.readouterr().out
        assert "obeys DRF0: False" in out


class TestSlowExampleComponents:
    def test_lock_performance_helpers(self):
        module = load_example("lock_performance")
        program = module.WORKLOADS[0]
        cycles = module.mean_cycles(program, module.POLICIES[0][1])
        assert cycles > 0

    def test_bug_hunt_finds_known_violation(self):
        module = load_example("hardware_bug_hunt")
        violations = module.hunt(
            module.NoReserveBits, [60], dict(net_latency=1, net_jitter=60)
        )
        assert len(violations) == 1

    def test_litmus_explorer_cell_renderer(self):
        module = load_example("litmus_explorer")
        from repro.axiomatic import SCModel
        from repro.litmus import by_name

        assert module.axiomatic_cell(by_name("SB"), SCModel()).strip() == "no"
        assert module.axiomatic_cell(by_name("MP+sync"), SCModel()).strip() == "-"
