"""Unit tests for the relation toolkit and the paper's po/so/hb relations."""

import pytest

from repro.core.models import DRF0_MODEL, DRF1_MODEL
from repro.core.ops import Operation
from repro.core.relations import (
    Relation,
    happens_before,
    program_order,
    synchronization_order,
)
from repro.core.types import OpKind

from helpers import execution_from_specs


class TestRelation:
    def test_ordered_follows_edges_transitively(self):
        r = Relation()
        r.add(1, 2)
        r.add(2, 3)
        assert r.ordered(1, 3)
        assert not r.ordered(3, 1)
        assert not r.ordered(1, 1)

    def test_transitive_closure_adds_implied_edges(self):
        r = Relation()
        r.add("a", "b")
        r.add("b", "c")
        closure = r.transitive_closure()
        assert closure.has_edge("a", "c")
        assert not closure.has_edge("c", "a")

    def test_union(self):
        r1, r2 = Relation(), Relation()
        r1.add(1, 2)
        r2.add(2, 3)
        merged = r1.union(r2)
        assert merged.has_edge(1, 2) and merged.has_edge(2, 3)

    def test_acyclicity(self):
        r = Relation()
        r.add(1, 2)
        r.add(2, 3)
        assert r.is_acyclic()
        r.add(3, 1)
        assert not r.is_acyclic()

    def test_self_loop_is_a_cycle(self):
        r = Relation()
        r.add(1, 1)
        assert not r.is_acyclic()

    def test_topological_order_consistent(self):
        r = Relation()
        r.add("a", "b")
        r.add("b", "c")
        r.add("a", "c")
        order = r.topological_order()
        assert order.index("a") < order.index("b") < order.index("c")

    def test_topological_order_rejects_cycles(self):
        r = Relation()
        r.add(1, 2)
        r.add(2, 1)
        with pytest.raises(ValueError):
            r.topological_order()

    def test_isolated_nodes_kept(self):
        r = Relation(nodes=[1, 2, 3])
        r.add(1, 2)
        assert 3 in r.nodes
        assert 3 in r.topological_order()

    def test_len_counts_edges(self):
        r = Relation()
        r.add(1, 2)
        r.add(1, 3)
        assert len(r) == 2

    def test_ordered_either_way(self):
        r = Relation()
        r.add(1, 2)
        assert r.ordered_either_way(2, 1)
        assert not r.ordered_either_way(1, 3)


class TestPaperRelations:
    def _paper_chain(self):
        """The hb example from Section 4 of the paper:

        op(P1,x) po S(P1,s) so S(P2,s) po S(P2,t) so S(P3,t) po op(P3,x)

        (completion order: each listed op completes in sequence).
        """
        W, S = OpKind.DATA_WRITE, OpKind.SYNC_RMW
        R = OpKind.DATA_READ
        return execution_from_specs(
            [
                (0, W, "x", None, 1),       # op(P1,x) -- proc index 0 plays P1
                (0, S, "s", 0, 1),          # S(P1,s)
                (1, S, "s", 1, 2),          # S(P2,s)
                (1, S, "t", 0, 1),          # S(P2,t)
                (2, S, "t", 1, 2),          # S(P3,t)
                (2, R, "x", 1, None),       # op(P3,x)
            ],
            num_procs=3,
        )

    def test_program_order_edges(self):
        execution = self._paper_chain()
        po = program_order(execution)
        ops = execution.ops
        assert po.has_edge(ops[0], ops[1])
        assert po.has_edge(ops[2], ops[3])
        assert po.has_edge(ops[4], ops[5])
        assert not po.has_edge(ops[1], ops[2])  # different processors

    def test_sync_order_same_location_only(self):
        execution = self._paper_chain()
        so = synchronization_order(execution)
        ops = execution.ops
        assert so.has_edge(ops[1], ops[2])  # both on s
        assert so.has_edge(ops[3], ops[4])  # both on t
        assert not so.has_edge(ops[1], ops[3])  # s vs t
        assert not so.has_edge(ops[0], ops[1])  # data op not in so

    def test_paper_example_transitive_chain(self):
        """The paper concludes op(P1,x) hb op(P3,x)."""
        execution = self._paper_chain()
        hb = happens_before(execution)
        assert hb.ordered(execution.ops[0], execution.ops[5])
        assert not hb.ordered(execution.ops[5], execution.ops[0])

    def test_hb_is_irreflexive(self):
        execution = self._paper_chain()
        hb = happens_before(execution)
        for op in execution.ops:
            assert not hb.has_edge(op, op)

    def test_sync_order_respects_completion_order(self):
        W, S = OpKind.DATA_WRITE, OpKind.SYNC_WRITE
        execution = execution_from_specs(
            [(1, S, "s", None, 0), (0, S, "s", None, 0)], num_procs=2
        )
        so = synchronization_order(execution)
        first, second = execution.ops
        assert so.has_edge(first, second)
        assert not so.has_edge(second, first)


class TestModelFilteredSyncOrder:
    def _release_then_acquire(self):
        """P0: Unset(s); P1: Test(s) -- write-only sync then read-only sync."""
        return execution_from_specs(
            [
                (0, OpKind.SYNC_WRITE, "s", None, 0),
                (1, OpKind.SYNC_READ, "s", 0, None),
            ],
            num_procs=2,
        )

    def _acquire_then_release(self):
        """P0: Test(s); P1: Unset(s) -- read-only sync completes first."""
        return execution_from_specs(
            [
                (0, OpKind.SYNC_READ, "s", 1, None),
                (1, OpKind.SYNC_WRITE, "s", None, 0),
            ],
            num_procs=2,
        )

    def test_drf0_orders_all_sync_pairs(self):
        for execution in (self._release_then_acquire(), self._acquire_then_release()):
            so = synchronization_order(execution, DRF0_MODEL)
            a, b = execution.ops
            assert so.has_edge(a, b)

    def test_drf1_only_release_to_acquire(self):
        so = synchronization_order(self._release_then_acquire(), DRF1_MODEL)
        a, b = self._release_then_acquire().ops
        assert so.has_edge(a, b)

        execution = self._acquire_then_release()
        so = synchronization_order(execution, DRF1_MODEL)
        a, b = execution.ops
        # Test (read-only) does not release, so no so edge under DRF1.
        assert not so.has_edge(a, b)

    def test_rmw_is_both_acquire_and_release_under_drf1(self):
        execution = execution_from_specs(
            [
                (0, OpKind.SYNC_RMW, "s", 0, 1),
                (1, OpKind.SYNC_RMW, "s", 1, 1),
            ],
            num_procs=2,
        )
        so = synchronization_order(execution, DRF1_MODEL)
        a, b = execution.ops
        assert so.has_edge(a, b)
