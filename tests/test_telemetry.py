"""Tests for the live campaign telemetry plane (PR 9).

Three layers, bottom-up:

* the streaming channel -- checksummed per-writer heartbeat spools, the
  tolerant tail reader, and the exactly-once task fold;
* the progress engine -- completion %, ETA convergence, stragglers, and
  the atomically-replaced status snapshot;
* end-to-end -- a monitored sweep (serial and pooled, calm and under
  chaos) must emit a monotone progress series and a final snapshot whose
  verdict table is byte-identical to the evidence the sweep printed,
  while never changing the evidence itself.
"""

import json
import os

import pytest

from repro.hw import POLICY_FACTORIES
from repro.litmus.catalog import by_name
from repro.obs import (
    CampaignMonitor,
    HeartbeatWriter,
    ProgressEngine,
    SpoolReader,
    StreamFold,
    render_status,
    validate_status,
    validate_status_file,
)
from repro.obs import stream as obs_stream
from repro.obs.tracer import OBS_CLOCK, now_us
from repro.sim.faults import DELIVERY_PRESERVING_PLANS
from repro.sim.system import SystemConfig
from repro.verify.engine import Failpoint, VerificationEngine

PROGRAM_NAMES = ("MP+sync", "SB")
POLICY_NAMES = ("sc", "adve-hill")
SEEDS = list(range(4))


def _programs():
    return [by_name(name).program for name in PROGRAM_NAMES]


def _factories():
    return {name: POLICY_FACTORIES[name] for name in POLICY_NAMES}


def _sweep(engine, config=None, **kwargs):
    return engine.definition2_sweep(
        _programs(), _factories(), config or SystemConfig(),
        seeds=SEEDS, **kwargs
    )


pool_available = pytest.mark.skipif(
    not VerificationEngine(jobs=2).can_fork,
    reason="fork start method unavailable",
)


@pytest.fixture(autouse=True)
def _unpublished_stream():
    """Telemetry globals must never leak between tests."""
    obs_stream.unpublish()
    yield
    obs_stream.unpublish()


# ----------------------------------------------------------------------
# Clock
# ----------------------------------------------------------------------


def test_clock_is_monotonic_microseconds():
    a = now_us()
    b = now_us()
    assert isinstance(a, int) and isinstance(b, int)
    assert b >= a
    assert OBS_CLOCK == "monotonic-us"


# ----------------------------------------------------------------------
# Streaming channel
# ----------------------------------------------------------------------


class TestSpool:
    def test_round_trip(self, tmp_path):
        spool = str(tmp_path / "spool")
        writer = HeartbeatWriter(spool, role="worker", interval=0.0)
        writer.add(runs=2, states=10)
        assert writer.beat(task="run:cell0x2")
        writer.task_done("1:0", 0, {"runs": 2, "states": 10})
        writer.stall("P0 stuck on gate:gp", task="run:cell0x2")
        writer.close()

        reader = SpoolReader(spool)
        records = reader.poll()
        kinds = [r["kind"] for r in records]
        assert kinds == ["meta", "beat", "task", "stall"]
        assert reader.dropped_lines == 0
        assert reader.spools_seen == 1
        meta, beat, task, stall = records
        assert meta["clock"] == OBS_CLOCK
        assert beat["counters"] == {"runs": 2, "states": 10}
        assert task["key"] == "1:0"
        assert stall["diagnosis"].startswith("P0 stuck")
        # Incremental: nothing new on the next poll.
        assert reader.poll() == []

    def test_torn_tail_left_for_next_poll(self, tmp_path):
        spool = str(tmp_path / "spool")
        writer = HeartbeatWriter(spool, interval=0.0)
        writer.beat(force=True)
        writer.close()
        [path] = [
            os.path.join(spool, n) for n in os.listdir(spool)
        ]
        reader = SpoolReader(spool)
        assert len(reader.poll()) == 2  # meta + beat
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "beat", "truncated')  # no newline
        assert reader.poll() == []  # torn tail: not consumed, not dropped
        assert reader.dropped_lines == 0

    def test_corrupt_line_dropped_and_counted(self, tmp_path):
        spool = str(tmp_path / "spool")
        writer = HeartbeatWriter(spool, interval=0.0)
        writer.beat(force=True)
        writer.close()
        [name] = os.listdir(spool)
        with open(os.path.join(spool, name), "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"kind": "beat", "ts": 1, "c": "badsum"}\n')
        reader = SpoolReader(spool)
        records = reader.poll()
        assert [r["kind"] for r in records] == ["meta", "beat"]
        assert reader.dropped_lines == 2

    def test_writers_never_share_a_file(self, tmp_path):
        spool = str(tmp_path / "spool")
        first = HeartbeatWriter(spool, interval=0.0)
        second = HeartbeatWriter(spool, interval=0.0)
        first.beat(force=True)
        second.beat(force=True)
        first.close()
        second.close()
        assert len(os.listdir(spool)) == 2  # same pid, distinct slots

    def test_disabled_telemetry_hooks_are_none(self):
        assert obs_stream.worker_writer() is None
        assert obs_stream.active_spool_dir() is None
        obs_stream.parent_poll()  # no-op, must not raise


class TestStreamFold:
    def _task(self, key, gen, counters):
        return {"kind": "task", "key": key, "gen": gen, "counters": counters}

    def test_duplicate_task_generations_fold_exactly_once(self):
        fold = StreamFold()
        fold.absorb(
            [
                self._task("1:0", 0, {"runs": 2, "states": 10}),
                self._task("1:1", 0, {"runs": 1, "states": 5}),
                # The same dispatch slot completing again after a crash
                # resubmission must not double-count.
                self._task("1:0", 1, {"runs": 2, "states": 10}),
            ]
        )
        assert fold.totals == {"runs": 3, "states": 15}
        assert fold.duplicates_skipped == 1
        assert fold.tasks == 2
        assert fold.states_total() == 15

    def test_beats_keep_latest_cumulative_counters(self):
        fold = StreamFold()
        beat = {
            "kind": "beat", "worker": "worker-1", "pid": 1, "role": "worker",
            "ts": 10, "task": "a", "gen": 0, "counters": {"runs": 1},
            "rss_kb": 5,
        }
        later = dict(beat, ts=20, task="b", counters={"runs": 4})
        fold.absorb([beat, later])
        view = fold.workers["worker-1"]
        assert view.counters == {"runs": 4}
        assert view.task == "b"
        assert view.last_ts == 20

    def test_silent_worker_detection(self):
        fold = StreamFold()
        fold.absorb(
            [
                {
                    "kind": "beat", "worker": "worker-1", "pid": 1,
                    "role": "worker", "ts": 1_000_000, "task": None,
                    "gen": 0, "counters": {}, "rss_kb": 0,
                },
                {
                    "kind": "beat", "worker": "worker-2", "pid": 2,
                    "role": "worker", "ts": 9_000_000, "task": None,
                    "gen": 0, "counters": {}, "rss_kb": 0,
                },
            ]
        )
        rows = fold.worker_rows(now=10_000_000, silent_after_us=5_000_000)
        states = {row["id"]: row["state"] for row in rows}
        assert states == {"worker-1": "silent", "worker-2": "ok"}
        assert rows[0]["id"] == "worker-1"  # silent sorts first


# ----------------------------------------------------------------------
# Progress engine
# ----------------------------------------------------------------------


class TestProgressEngine:
    def test_completion_monotone_and_eta_converges(self):
        engine = ProgressEngine()
        engine.plan([("a", 4, 100.0), ("b", 4, 300.0)])
        assert engine.view()["completion"] == 0.0
        assert engine.view()["eta_s"] is None  # no live throughput yet
        engine.unit_done(0, 2)
        view = engine.view()
        assert view["completion"] == pytest.approx(0.25)
        assert view["eta_s"] is not None and view["eta_s"] >= 0
        # A late-added extra pool grows the denominator, but the bar
        # must never move backwards.
        engine.add_extra("judge", 8)
        assert engine.view()["completion"] >= 0.25
        engine.unit_done(0, 2)
        engine.unit_done(1, 4)
        engine.extra_done("judge", 8)
        final = engine.view()
        assert final["completion"] == 1.0
        assert final["eta_s"] == 0.0

    def test_prefilled_work_excluded_from_rate(self):
        engine = ProgressEngine()
        engine.plan([("a", 10, 100.0)])
        engine.prefill(0, 10)
        view = engine.view()
        assert view["completion"] == 1.0
        assert view["eta_s"] == 0.0

    def test_median_cost_prices_unknown_cells(self):
        engine = ProgressEngine()
        engine.plan([("a", 1, 50.0), ("b", 1, 150.0), ("c", 1, 0.0)])
        assert engine.median_unit_cost() == 150.0

    def test_straggler_flags_past_double_prediction(self):
        engine = ProgressEngine()
        engine.plan([("slow", 2, 100.0), ("fine", 2, 100.0)])
        engine.observe_cell_us(0, 500.0)  # 2.5x the 200us prediction
        engine.observe_cell_us(1, 150.0)
        [row] = engine.stragglers()
        assert row["cell"] == "slow"
        assert row["ratio"] == pytest.approx(2.5)
        # A finished cell is no longer a straggler.
        engine.unit_done(0, 2)
        assert engine.stragglers() == []


# ----------------------------------------------------------------------
# Campaign monitor + snapshot
# ----------------------------------------------------------------------


class TestCampaignMonitor:
    def _monitor(self, tmp_path, **kwargs):
        kwargs.setdefault("interval", 0.0)
        kwargs.setdefault("hb_interval", 0.0)
        return CampaignMonitor(
            str(tmp_path / "status.json"), command="test", **kwargs
        )

    def test_snapshot_schema_validates(self, tmp_path):
        monitor = self._monitor(tmp_path)
        try:
            assert monitor.claim_plan()
            assert not monitor.claim_plan()  # exactly once
            monitor.plan([("cell", 4, 10.0)])
            monitor.unit_done(0, 2)
            snap = monitor.poll(force=True)
            assert validate_status(snap) == []
            assert validate_status_file(monitor.status_path) == []
            on_disk = json.load(open(monitor.status_path))
            assert on_disk["seq"] == snap["seq"]
            assert on_disk["schema"] == "repro-status/1"
            assert on_disk["clock"]["id"] == OBS_CLOCK
        finally:
            monitor.close()

    def test_seq_monotone_and_atomic_replace(self, tmp_path):
        monitor = self._monitor(tmp_path)
        try:
            seqs = [monitor.poll(force=True)["seq"] for _ in range(4)]
            assert seqs == sorted(seqs) and len(set(seqs)) == 4
            # No tmp litter next to the status file.
            names = os.listdir(tmp_path)
            assert not [n for n in names if ".tmp." in n]
        finally:
            monitor.close()

    def test_worker_heartbeats_surface_in_snapshot(self, tmp_path):
        monitor = self._monitor(tmp_path)
        try:
            writer = obs_stream.worker_writer()
            assert writer is not None  # publishing activated streaming
            writer.add(runs=3)
            writer.beat(task="run:cell0x3", force=True)
            writer.task_done("1:0", 0, {"runs": 3})
            snap = monitor.poll(force=True)
            [row] = snap["workers"]
            assert row["state"] == "ok"
            assert row["task"] == "run:cell0x3"
            assert snap["totals"] == {"runs": 3}
            assert snap["stream"]["beats"] == 1
        finally:
            monitor.close()

    def test_finish_embeds_verdicts_and_cleans_spool(self, tmp_path):
        monitor = self._monitor(tmp_path)
        rows = [{"program": "MP+sync", "appears_sc": True}]
        monitor.claim_plan()
        monitor.plan([("cell", 1, 0.0)])
        monitor.unit_done(0)
        monitor.finish(ok=True, verdicts=rows, result={"contract_holds": True})
        snap = json.load(open(monitor.status_path))
        assert snap["state"] == "done"
        assert snap["verdicts"] == rows
        assert snap["progress"]["completion"] == 1.0
        assert snap["progress"]["eta_s"] == 0.0
        assert validate_status(snap) == []
        assert not os.path.isdir(monitor.spool_dir)
        assert obs_stream.active_spool_dir() is None  # unpublished

    def test_fail_writes_terminal_error_snapshot(self, tmp_path):
        monitor = self._monitor(tmp_path)
        monitor.fail("LivenessError: P0 stuck on gate:gp")
        snap = json.load(open(monitor.status_path))
        assert snap["state"] == "failed"
        assert "P0 stuck" in snap["error"]
        assert validate_status(snap) == []

    def test_stall_diagnosis_reaches_snapshot(self, tmp_path):
        monitor = self._monitor(tmp_path)
        try:
            writer = obs_stream.worker_writer()
            writer.stall("P1 stuck on fence (47 cycles)", task="run:cell1x2")
            snap = monitor.poll(force=True)
            [stall] = snap["health"]["stalls"]
            assert "P1 stuck on fence" in stall["diagnosis"]
            assert "P1 stuck on fence" in render_status(snap)
        finally:
            monitor.close()

    def test_render_status_smoke(self, tmp_path):
        monitor = self._monitor(tmp_path)
        try:
            monitor.claim_plan()
            monitor.plan([("MP+sync/sc", 4, 10.0)])
            monitor.unit_done(0, 1)
            text = render_status(monitor.poll(force=True))
            assert "repro campaign: test" in text
            assert "25.00%" in text
        finally:
            monitor.close()


class TestValidator:
    def _valid(self, tmp_path):
        monitor = CampaignMonitor(
            str(tmp_path / "s.json"), interval=0.0, hb_interval=0.0
        )
        snap = monitor.poll(force=True)
        monitor.close()
        return snap

    def test_rejects_wrong_schema(self, tmp_path):
        snap = self._valid(tmp_path)
        snap["schema"] = "repro-status/999"
        assert validate_status(snap)

    def test_rejects_out_of_range_completion(self, tmp_path):
        snap = self._valid(tmp_path)
        snap["progress"]["completion"] = 1.5
        assert validate_status(snap)

    def test_rejects_done_without_converged_eta(self, tmp_path):
        snap = self._valid(tmp_path)
        snap["state"] = "done"
        snap["progress"]["completion"] = 1.0
        snap["progress"]["eta_s"] = 3.0
        assert validate_status(snap)

    def test_rejects_non_object(self):
        assert validate_status([])
        assert validate_status(None)


# ----------------------------------------------------------------------
# End-to-end: monitored sweeps
# ----------------------------------------------------------------------


def _rows_key(rows):
    return json.dumps(rows, sort_keys=True)


def _monitored_sweep(tmp_path, jobs, config=None, **engine_kwargs):
    snapshots = []
    monitor = CampaignMonitor(
        str(tmp_path / "status.json"),
        command="sweep",
        interval=0.0,
        hb_interval=0.0,
        on_snapshot=snapshots.append,
    )
    engine = VerificationEngine(jobs=jobs, monitor=monitor, **engine_kwargs)
    evidence = _sweep(engine, config=config)
    monitor.finish(
        ok=evidence.contract_holds,
        verdicts=evidence.rows,
        result={"contract_holds": evidence.contract_holds},
    )
    final = json.load(open(str(tmp_path / "status.json")))
    return evidence, snapshots, final


def _assert_telemetry_contract(evidence, snapshots, final, reference):
    # Telemetry never changes the evidence.
    assert _rows_key(evidence.rows) == _rows_key(reference.rows)
    # The progress series is monotone non-decreasing.
    series = [s["progress"]["completion"] for s in snapshots]
    assert series == sorted(series)
    assert series[-1] == 1.0
    # The final snapshot's verdict table is byte-identical to the
    # evidence the sweep printed.
    assert _rows_key(final["verdicts"]) == _rows_key(evidence.rows)
    assert final["state"] == "done"
    assert final["progress"]["eta_s"] == 0.0
    assert validate_status(final) == []


@pytest.fixture(scope="module")
def reference_evidence():
    return _sweep(VerificationEngine(jobs=1))


class TestMonitoredSweep:
    def test_serial_sweep_emits_monotone_progress(
        self, tmp_path, reference_evidence
    ):
        evidence, snapshots, final = _monitored_sweep(tmp_path, jobs=1)
        _assert_telemetry_contract(
            evidence, snapshots, final, reference_evidence
        )
        assert final["workers"]  # the serial parent heartbeats too
        assert final["totals"].get("runs") == len(evidence.rows) * len(SEEDS)

    @pool_available
    def test_pooled_sweep_heartbeats_per_worker(
        self, tmp_path, reference_evidence
    ):
        evidence, snapshots, final = _monitored_sweep(tmp_path, jobs=2)
        _assert_telemetry_contract(
            evidence, snapshots, final, reference_evidence
        )
        roles = {row["role"] for row in final["workers"]}
        assert "worker" in roles
        assert final["stream"]["records"] > 0
        assert final["stream"]["dropped_lines"] == 0

    @pool_available
    def test_chaos_sweep_keeps_totals_truthful(self, tmp_path):
        """The satellite acceptance test: a pooled sweep under a
        delivery-preserving fault plan with a crash-killed worker must
        still stream a monotone progress series and finish with the
        bit-identical verdict table."""
        config = SystemConfig(
            fault_plan=DELIVERY_PRESERVING_PLANS["jitter-light"]
        )
        reference = _sweep(VerificationEngine(jobs=1), config=config)
        evidence, snapshots, final = _monitored_sweep(
            tmp_path,
            jobs=2,
            config=config,
            failpoints=(
                Failpoint("run", "crash", str(tmp_path / "token")),
            ),
            task_timeout=30,
        )
        _assert_telemetry_contract(evidence, snapshots, final, reference)
        assert (tmp_path / "token").exists()  # the crash really fired
        assert final["health"]["resilience"].get("worker_crashes", 0) >= 1
        # The deduped exactly-once totals equal the sweep's real work:
        # every (cell, seed) hardware run counted exactly once even
        # though a crashed task was resubmitted.
        assert final["totals"].get("runs") == len(evidence.rows) * len(SEEDS)


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------


class TestStatusCLI:
    def _run_sweep(self, tmp_path):
        from repro import cli

        path = str(tmp_path / "status.json")
        code = cli.main(
            [
                "sweep", "MP+sync", "--seeds", "2", "--drf0-seeds", "2",
                "--policy", "sc", "--status-json", path,
            ]
        )
        assert code == 0
        return path

    def test_status_renders_final_snapshot(self, tmp_path, capsys):
        from repro import cli

        path = self._run_sweep(tmp_path)
        capsys.readouterr()
        assert cli.main(["status", path]) == 0
        out = capsys.readouterr().out
        assert "100.00%" in out
        assert "final verdict rows: 1" in out

    def test_status_json_passthrough(self, tmp_path, capsys):
        from repro import cli

        path = self._run_sweep(tmp_path)
        capsys.readouterr()
        assert cli.main(["status", path, "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["state"] == "done"
        assert validate_status(snap) == []

    def test_top_once(self, tmp_path, capsys):
        from repro import cli

        path = self._run_sweep(tmp_path)
        capsys.readouterr()
        assert cli.main(["top", path, "--once"]) == 0
        assert "repro campaign" in capsys.readouterr().out

    def test_status_missing_file_is_usage_error(self, tmp_path):
        from repro import cli

        with pytest.raises(SystemExit) as excinfo:
            cli.main(["status", str(tmp_path / "nope.json")])
        assert excinfo.value.code == 2

    def test_status_invalid_snapshot_fails(self, tmp_path, capsys):
        from repro import cli

        path = str(tmp_path / "bad.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema": "wrong"}, handle)
        assert cli.main(["status", path]) == 1
        assert "INVALID" in capsys.readouterr().err

    def test_status_failed_campaign_exits_nonzero(self, tmp_path, capsys):
        from repro import cli

        path = str(tmp_path / "status.json")
        monitor = CampaignMonitor(path, command="sweep", interval=0.0)
        monitor.fail("injected failure")
        capsys.readouterr()
        assert cli.main(["status", path]) == 1
        assert "injected failure" in capsys.readouterr().out

    def test_drf0_status_json(self, tmp_path, capsys):
        from repro import cli

        path = str(tmp_path / "drf0.json")
        # SB is racy (exit 1 from the verdict), but the *campaign*
        # completed, so the snapshot lands in "done" with a converged ETA.
        code = cli.main(["drf0", "SB", "--dpor", "--status-json", path])
        assert code == 1
        snap = json.load(open(path))
        assert validate_status(snap) == []
        assert snap["state"] == "done"
        assert snap["result"]["obeys"] is False
        assert snap["progress"]["completion"] == 1.0
