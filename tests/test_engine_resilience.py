"""Tests for the verification engine's crash tolerance.

The hardened engine makes one promise: whatever goes wrong underneath --
a worker crashing mid-task, a worker hanging, a task raising, a cache
entry corrupted, the whole process killed between sweeps -- the sweep's
output is bit-for-bit what the undisturbed serial engine produces.
"""

import os

import pytest

from repro.hw import POLICY_FACTORIES
from repro.litmus.catalog import by_name
from repro.sim.system import SystemConfig
from repro.verify import (
    CheckpointJournal,
    Failpoint,
    JournalError,
    VerificationEngine,
    sweep_signature,
)

PROGRAM_NAMES = ("MP+sync", "SB")
POLICY_NAMES = ("sc", "adve-hill")
SEEDS = list(range(5))


def _programs():
    return [by_name(name).program for name in PROGRAM_NAMES]


def _factories():
    return {name: POLICY_FACTORIES[name] for name in POLICY_NAMES}


def _sweep(engine, **kwargs):
    return engine.definition2_sweep(
        _programs(), _factories(), SystemConfig(), seeds=SEEDS, **kwargs
    )


def _rows(evidence):
    return [tuple(sorted(row.items(), key=lambda kv: kv[0])) for row in
            [{k: repr(v) for k, v in r.items()} for r in evidence.rows]]


@pytest.fixture(scope="module")
def reference_rows():
    return _rows(_sweep(VerificationEngine(jobs=1)))


pool_available = pytest.mark.skipif(
    not VerificationEngine(jobs=2).can_fork,
    reason="fork start method unavailable",
)


@pool_available
class TestFailpointRecovery:
    def test_worker_crash_recovers_identically(self, reference_rows, tmp_path):
        engine = VerificationEngine(
            jobs=2,
            failpoints=(Failpoint("run", "crash", str(tmp_path / "t")),),
            task_timeout=30,
        )
        assert _rows(_sweep(engine)) == reference_rows
        assert (tmp_path / "t").exists()  # the failpoint really fired
        assert engine.resilience.get("worker_crashes", 0) >= 1

    def test_task_error_recovers_identically(self, reference_rows, tmp_path):
        engine = VerificationEngine(
            jobs=2,
            failpoints=(Failpoint("judge", "error", str(tmp_path / "t")),),
        )
        assert _rows(_sweep(engine)) == reference_rows
        assert engine.resilience.get("task_errors", 0) >= 1

    def test_hung_worker_times_out_and_recovers(
        self, reference_rows, tmp_path
    ):
        engine = VerificationEngine(
            jobs=2,
            failpoints=(Failpoint("run", "hang", str(tmp_path / "t")),),
            task_timeout=1.0,
        )
        assert _rows(_sweep(engine)) == reference_rows
        assert engine.resilience.get("task_timeouts", 0) >= 1

    def test_repeated_failures_degrade_to_serial(self, reference_rows):
        # max_task_retries=0: the first failure goes straight to the
        # parent-process fallback, which must still be exact.
        engine = VerificationEngine(
            jobs=2,
            failpoints=(Failpoint("run", "hang", "/nonexistent-dir/t"),),
            task_timeout=30,
            max_task_retries=0,
        )
        # Token path unopenable -> failpoint never fires; run is clean but
        # the retry budget of zero must not break the normal path.
        assert _rows(_sweep(engine)) == reference_rows


class TestJournalResume:
    def test_journal_written_and_complete(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        _sweep(VerificationEngine(jobs=1), journal_path=path)
        state = CheckpointJournal.load(path)
        assert state.signature is not None
        # cells x seeds runs + per-program drf0 verdicts + judgments
        cells = len(PROGRAM_NAMES) * len(POLICY_NAMES)
        assert len(state.runs) == cells * len(SEEDS)
        assert len(state.drf0) == len(PROGRAM_NAMES)
        assert state.judgments
        assert state.dropped_lines == 0

    def test_resume_after_truncation_is_identical(
        self, reference_rows, tmp_path
    ):
        path = str(tmp_path / "sweep.jsonl")
        _sweep(VerificationEngine(jobs=1), journal_path=path)
        with open(path) as fh:
            lines = fh.readlines()
        # Keep the meta line plus a partial prefix, plus a torn tail --
        # exactly what a SIGKILL mid-write leaves behind.
        with open(path, "w") as fh:
            fh.writelines(lines[: len(lines) // 2])
            fh.write('{"kind": "run", "cell": 0, "pos"')
        engine = VerificationEngine(jobs=1)
        evidence = _sweep(engine, journal_path=path, resume=True)
        assert _rows(evidence) == reference_rows
        assert engine.resilience["journal_units_reused"] > 0

    def test_resume_skips_journaled_work(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        _sweep(VerificationEngine(jobs=1), journal_path=path)
        engine = VerificationEngine(jobs=1, metrics=_registry())
        _sweep(engine, journal_path=path, resume=True)
        # A fully journaled sweep re-runs no hardware tasks at all.
        assert engine.metrics.counter("engine.tasks.run").value == 0

    def test_resume_without_journal_refuses(self, tmp_path):
        engine = VerificationEngine(jobs=1)
        with pytest.raises(JournalError, match="no usable journal"):
            _sweep(
                engine,
                journal_path=str(tmp_path / "missing.jsonl"),
                resume=True,
            )

    def test_resume_with_foreign_signature_refuses(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        journal = CheckpointJournal(path)
        journal.open(signature="not-this-sweep", fresh=True)
        journal.close()
        with pytest.raises(JournalError, match="signature"):
            _sweep(VerificationEngine(jobs=1), journal_path=path, resume=True)

    def test_signature_ignores_jobs(self):
        args = (["fp"], ("sc",), "cfg", [1, 2], [3], False, False)
        assert sweep_signature(*args) == sweep_signature(*args)

    def test_resume_under_different_jobs(self, reference_rows, tmp_path):
        if not VerificationEngine(jobs=2).can_fork:
            pytest.skip("fork unavailable")
        path = str(tmp_path / "sweep.jsonl")
        _sweep(VerificationEngine(jobs=2), journal_path=path)
        with open(path) as fh:
            lines = fh.readlines()
        with open(path, "w") as fh:
            fh.writelines(lines[: len(lines) * 2 // 3])
        evidence = _sweep(
            VerificationEngine(jobs=1), journal_path=path, resume=True
        )
        assert _rows(evidence) == reference_rows


class TestCacheQuarantine:
    def test_poisoned_entry_recomputed_not_fatal(self, reference_rows):
        engine = VerificationEngine(jobs=1)
        first = _sweep(engine)
        assert _rows(first) == reference_rows
        # Corrupt every cached SC verdict in place (flip the verdict but
        # keep the stale checksum), then sweep again: the hardened path
        # must quarantine and recompute, not raise or serve lies.
        entries = engine.sc_cache._entries
        for key, (verdict, checksum) in list(entries.items()):
            entries[key] = (not verdict, checksum)
        second = _sweep(engine)
        assert _rows(second) == reference_rows
        assert engine.sc_cache.stats.quarantined > 0

    def test_quarantine_counter_in_metrics(self):
        engine = VerificationEngine(jobs=1)
        _sweep(engine)
        registry = engine.metrics_snapshot()
        assert registry.counter("engine.sc_cache.quarantined").value == 0


class TestInterruptSafety:
    def test_session_teardown_on_error(self):
        # An exception escaping mid-session must terminate the pool and
        # re-raise; a subsequent engine call must work normally.
        engine = VerificationEngine(jobs=2)
        with pytest.raises(RuntimeError, match="boom"):
            with engine._session(_context()) as _session:
                raise RuntimeError("boom")
        assert _rows(_sweep(engine)) == _rows(_sweep(VerificationEngine()))


def _registry():
    from repro.obs import MetricsRegistry

    return MetricsRegistry()


def _context():
    from repro.verify.engine import _TaskContext

    return _TaskContext()
