"""Tests for the idealized sequentially consistent architecture."""

import pytest

from repro.core.execution import Result
from repro.core.sc import (
    ExplorationConfig,
    ExplorationIncomplete,
    explore,
    random_sc_execution,
    sc_executions,
    sc_results,
)
from repro.core.types import Condition, OpKind
from repro.machine.dsl import ThreadBuilder, build_program

from helpers import (
    lock_increment_program,
    message_passing_program,
    store_buffer_program,
)


class TestStoreBuffer:
    """The paper's Figure-1 litmus on the idealized architecture."""

    def test_exactly_three_results(self):
        results = sc_results(store_buffer_program())
        observed = {(r.reads[0][0], r.reads[1][0]) for r in results}
        assert observed == {(0, 1), (1, 0), (1, 1)}

    def test_forbidden_outcome_absent(self):
        """Sequential consistency forbids r1 == r2 == 0 (both killed)."""
        results = sc_results(store_buffer_program())
        assert all(not (r.reads[0][0] == 0 and r.reads[1][0] == 0) for r in results)

    def test_final_memory_always_one_one(self):
        for result in sc_results(store_buffer_program()):
            assert result.memory_value("x") == 1
            assert result.memory_value("y") == 1

    def test_execution_count_without_dedup(self):
        # 4 operations, 2 per thread: C(4,2) = 6 interleavings.
        executions = sc_executions(store_buffer_program())
        assert len(executions) == 6


class TestSingleThread:
    def test_deterministic_program_single_result(self):
        program = build_program(
            [ThreadBuilder().store("x", 3).load("r0", "x").store("y", "r0")]
        )
        results = sc_results(program)
        assert len(results) == 1
        (result,) = results
        assert result.reads == ((3,),)
        assert result.memory_value("y") == 3

    def test_empty_program(self):
        from repro.machine.program import Program

        program = Program.make([[]], name="empty")
        results = sc_results(program)
        assert len(results) == 1
        (result,) = results
        assert result.reads == ((),)

    def test_uniprocessor_program_order_respected(self):
        """Reads observe the latest program-order write (uniproc semantics)."""
        program = build_program(
            [
                ThreadBuilder()
                .store("x", 1)
                .load("a", "x")
                .store("x", 2)
                .load("b", "x")
            ]
        )
        (result,) = sc_results(program)
        assert result.reads == ((1, 2),)


class TestAtomicity:
    def test_test_and_set_mutual_exclusion(self):
        """Exactly one of two competing TestAndSets can win."""
        t = lambda: ThreadBuilder().test_and_set("r0", "lock")
        program = build_program([t(), t()], name="tas-race")
        winners = set()
        for result in sc_results(program):
            got0, got1 = result.reads[0][0], result.reads[1][0]
            winners.add((got0, got1))
        # One processor reads 0 (wins), the other reads 1 -- never both 0.
        assert winners == {(0, 1), (1, 0)}

    def test_rmw_read_and_write_atomic(self):
        """A TestAndSet never observes a value that was already overwritten."""
        program = build_program(
            [
                ThreadBuilder().test_and_set("r0", "s", set_value=2),
                ThreadBuilder().test_and_set("r1", "s", set_value=3),
            ]
        )
        for result in sc_results(program):
            final = result.memory_value("s")
            r0, r1 = result.reads[0][0], result.reads[1][0]
            # the loser's read must see the winner's set value
            assert sorted([r0, r1])[0] == 0
            assert final in (2, 3)
            if r0 == 0 and r1 == 2:
                assert final == 3
            if r1 == 0 and r0 == 3:
                assert final == 2


class TestSpinLoops:
    def test_message_passing_sync_only_sc_value(self):
        """After the flag flips, the consumer always reads the data."""
        program = message_passing_program(sync=True)
        results = sc_results(program)
        for result in results:
            # Last read is the data read; must be 42 once flag observed 0.
            assert result.reads[1][-1] == 42

    def test_lock_program_counter_always_two(self):
        results = sc_results(lock_increment_program(2))
        assert {r.memory_value("count") for r in results} == {2}

    def test_exploration_terminates_with_cycle_pruning(self):
        exploration = explore(lock_increment_program(2))
        assert exploration.complete
        assert exploration.executions


class TestCapsAndConfig:
    def test_max_executions_cap_reported(self):
        cfg = ExplorationConfig(max_executions=2)
        exploration = explore(store_buffer_program(), cfg)
        assert len(exploration.executions) == 2
        assert not exploration.complete

    def test_max_ops_raises_without_allow_incomplete(self):
        # Unbounded producer: a thread that increments x forever.
        t = (
            ThreadBuilder()
            .label("top")
            .load("r", "x")
            .add("r", "r", 1)
            .store("x", "r")
            .jump("top")
        )
        program = build_program([t], name="unbounded")
        with pytest.raises(ExplorationIncomplete):
            explore(program, ExplorationConfig(max_ops=10))

    def test_max_ops_tolerated_with_allow_incomplete(self):
        t = (
            ThreadBuilder()
            .label("top")
            .load("r", "x")
            .add("r", "r", 1)
            .store("x", "r")
            .jump("top")
        )
        program = build_program([t], name="unbounded")
        exploration = explore(
            program, ExplorationConfig(max_ops=10, allow_incomplete=True)
        )
        assert not exploration.complete


class TestRandomExecution:
    def test_random_execution_result_is_in_sc_set(self):
        program = store_buffer_program()
        results = sc_results(program)
        for seed in range(20):
            execution = random_sc_execution(program, seed)
            assert execution.result() in results

    def test_random_execution_reproducible_by_seed(self):
        program = store_buffer_program()
        a = random_sc_execution(program, 7)
        b = random_sc_execution(program, 7)
        assert a.ops == b.ops

    def test_trace_uids_are_completion_indices(self):
        execution = random_sc_execution(store_buffer_program(), 3)
        assert [op.uid for op in execution.ops] == list(range(len(execution.ops)))

    def test_po_indices_per_processor(self):
        execution = random_sc_execution(lock_increment_program(2), 11)
        for proc in range(2):
            indices = [op.po_index for op in execution.ops_of(proc)]
            assert indices == sorted(indices)
            assert len(set(indices)) == len(indices)


class TestExecutionAccessors:
    def test_result_reads_in_program_order(self):
        program = build_program(
            [ThreadBuilder().load("a", "x").load("b", "y")],
            initial_memory={"x": 1, "y": 2},
        )
        (result,) = sc_results(program)
        assert result.reads == ((1, 2),)

    def test_writes_to_and_sync_ops(self):
        execution = random_sc_execution(lock_increment_program(2), 0)
        syncs = execution.sync_ops()
        assert syncs and all(op.is_sync for op in syncs)
        writes = execution.writes_to("count")
        assert all(op.has_write and op.location == "count" for op in writes)

    def test_memory_value_missing_location_raises(self):
        (result,) = sc_results(build_program([ThreadBuilder().store("x", 1)]))
        with pytest.raises(KeyError):
            result.memory_value("nope")
