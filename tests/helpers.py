"""Shared test helpers: canned programs and execution builders."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.execution import Execution, final_memory_from_dict
from repro.core.ops import Operation
from repro.core.types import Condition, OpKind
from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.program import Program


def store_buffer_program() -> Program:
    """The paper's Figure-1 litmus: W(x) R(y) || W(y) R(x)."""
    p1 = ThreadBuilder().store("x", 1).load("r1", "y")
    p2 = ThreadBuilder().store("y", 1).load("r2", "x")
    return build_program([p1, p2], name="store-buffer")


def message_passing_program(sync: bool = True) -> Program:
    """Producer writes data then flag; consumer spins on flag, reads data.

    With ``sync=True`` the flag accesses are synchronization operations
    (DRF0-conformant); otherwise they are data accesses (racy).
    """
    p0 = ThreadBuilder().store("data", 42)
    p1 = ThreadBuilder()
    if sync:
        p0.unset("flag")
        p1.label("wait").sync_load("r0", "flag").branch_if(
            Condition.NE, "r0", 0, "wait"
        )
    else:
        p0.store("flag", 0)
        p1.label("wait").load("r0", "flag").branch_if(Condition.NE, "r0", 0, "wait")
    p1.load("r1", "data")
    return build_program(
        [p0, p1],
        initial_memory={"flag": 1},
        name="mp-sync" if sync else "mp-racy",
    )


def lock_increment_program(num_procs: int = 2, ttas: bool = False) -> Program:
    """Each processor acquires a lock, increments a counter, releases."""
    threads = []
    for _ in range(num_procs):
        t = ThreadBuilder()
        if ttas:
            t.acquire_ttas("lock")
        else:
            t.acquire("lock")
        t.load("tmp", "count").add("tmp", "tmp", 1).store("count", "tmp").release(
            "lock"
        )
        threads.append(t)
    name = f"lock{num_procs}" + ("-ttas" if ttas else "")
    return build_program(threads, name=name)


def racy_program() -> Program:
    """Unsynchronized conflicting accesses: the simplest DRF0 violation."""
    return build_program(
        [ThreadBuilder().store("x", 1), ThreadBuilder().load("r0", "x")],
        name="racy",
    )


def make_ops(
    specs: Sequence[Tuple[int, OpKind, str, Optional[int], Optional[int]]],
) -> Tuple[Operation, ...]:
    """Build operations from (proc, kind, location, read, written) tuples.

    The sequence order is the completion order; program-order indices are
    assigned per processor in that order.
    """
    po_counts: dict = {}
    ops: List[Operation] = []
    for uid, (proc, kind, location, read, written) in enumerate(specs):
        po = po_counts.get(proc, 0)
        po_counts[proc] = po + 1
        ops.append(
            Operation(
                uid=uid,
                proc=proc,
                po_index=po,
                kind=kind,
                location=location,
                value_read=read,
                value_written=written,
            )
        )
    return tuple(ops)


def execution_from_specs(
    specs: Sequence[Tuple[int, OpKind, str, Optional[int], Optional[int]]],
    num_procs: int,
    final_memory: Optional[dict] = None,
) -> Execution:
    """An :class:`Execution` over a placeholder program, for relation tests."""
    program = Program.make(
        [[] for _ in range(num_procs)],
        initial_memory=final_memory or {},
        name="constructed",
    )
    return Execution(
        program, make_ops(specs), final_memory_from_dict(final_memory or {})
    )
