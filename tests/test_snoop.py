"""Tests for the atomic snooping-bus coherence substrate."""

import pytest

from repro.core.contract import is_sc_result
from repro.core.types import OpKind
from repro.hw import (
    AdveHillPolicy,
    Definition1Policy,
    RelaxedPolicy,
    SCPolicy,
)
from repro.sim.access import AccessRecord
from repro.sim.cache import LineState
from repro.sim.events import Simulator
from repro.sim.snoop import SnoopBus, SnoopyCache
from repro.sim.system import SystemConfig, run_on_hardware

from helpers import (
    lock_increment_program,
    message_passing_program,
    store_buffer_program,
)

SNOOP = SystemConfig(coherence="snoop", topology="bus")


def make_access(uid, kind, loc, write=None, proc=0, po=0):
    a = AccessRecord(uid, proc, po, kind, loc, write)
    a.mark_generated(0)
    return a


def rig(num_caches=2, memory=None):
    sim = Simulator()
    bus = SnoopBus(sim, memory or {"x": 0, "s": 1}, latency=2)
    caches = [SnoopyCache(sim, bus, f"proc{i}") for i in range(num_caches)]
    return sim, bus, caches


class TestProtocol:
    def test_read_miss_installs_shared(self):
        sim, bus, caches = rig()
        r = make_access(0, OpKind.DATA_READ, "x")
        caches[0].submit(r)
        sim.run()
        assert r.value_read == 0 and r.globally_performed
        assert caches[0].line("x").state is LineState.SHARED

    def test_write_transaction_commits_and_performs_atomically(self):
        sim, bus, caches = rig()
        w = make_access(0, OpKind.DATA_WRITE, "x", write=7)
        caches[0].submit(w)
        sim.run()
        assert w.commit_time == w.gp_time  # the atomic-bus hallmark
        assert caches[0].line("x").state is LineState.MODIFIED

    def test_exclusive_transaction_invalidates_sharers(self):
        sim, bus, caches = rig()
        r = make_access(0, OpKind.DATA_READ, "x", proc=1)
        caches[1].submit(r)
        sim.run()
        w = make_access(1, OpKind.DATA_WRITE, "x", write=7)
        caches[0].submit(w)
        sim.run()
        assert caches[1].line("x").state is LineState.INVALID
        assert bus.invalidations_sent == 1

    def test_modified_copy_supplied_and_written_back(self):
        sim, bus, caches = rig()
        w = make_access(0, OpKind.DATA_WRITE, "x", write=9)
        caches[0].submit(w)
        sim.run()
        r = make_access(1, OpKind.DATA_READ, "x", proc=1)
        caches[1].submit(r)
        sim.run()
        assert r.value_read == 9
        assert bus.memory["x"] == 9  # write-back happened on the grant
        assert caches[0].line("x").state is LineState.SHARED

    def test_rmw_reads_old_value(self):
        sim, bus, caches = rig()
        a = make_access(0, OpKind.SYNC_RMW, "s", write=1)
        caches[0].submit(a)
        sim.run()
        assert a.value_read == 1

    def test_bus_serializes_transactions(self):
        sim, bus, caches = rig()
        w0 = make_access(0, OpKind.DATA_WRITE, "x", write=1, proc=0)
        w1 = make_access(1, OpKind.DATA_WRITE, "x", write=2, proc=1)
        caches[0].submit(w0)
        caches[1].submit(w1)
        sim.run()
        assert w0.commit_time != w1.commit_time
        assert bus.final_value("x", caches) == (
            2 if w1.commit_time > w0.commit_time else 1
        )

    def test_hit_steal_recheck(self):
        """A hit scheduled during another's exclusive grant re-issues."""
        sim, bus, caches = rig()
        w = make_access(0, OpKind.DATA_WRITE, "x", write=1)
        caches[0].submit(w)
        sim.run()
        # proc0 holds M; proc1 takes it exclusively while proc0's next hit
        # is in its hit-latency window.
        local = make_access(1, OpKind.DATA_WRITE, "x", write=3, po=1)
        remote = make_access(2, OpKind.DATA_WRITE, "x", write=5, proc=1)
        caches[1].submit(remote)
        caches[0].submit(local)
        sim.run()
        assert local.committed and remote.committed
        assert bus.final_value("x", caches) in (3, 5)


class TestSystemRuns:
    def test_figure1_relaxed_violates_on_snoop_bus(self):
        program = store_buffer_program()
        observed = any(
            (lambda r: r.reads[0][0] == 0 and r.reads[1][0] == 0)(
                run_on_hardware(program, RelaxedPolicy(), SNOOP.with_seed(s)).result
            )
            for s in range(30)
        )
        assert observed  # via the write buffer, per Figure 1's bus-cache row

    def test_sc_policy_safe_on_snoop_bus(self):
        program = store_buffer_program()
        for seed in range(20):
            result = run_on_hardware(program, SCPolicy(), SNOOP.with_seed(seed)).result
            assert not (result.reads[0][0] == 0 and result.reads[1][0] == 0)

    @pytest.mark.parametrize(
        "policy_factory",
        [SCPolicy, Definition1Policy, AdveHillPolicy,
         lambda: AdveHillPolicy(drf1_optimized=True)],
    )
    def test_contract_on_drf0_programs(self, policy_factory):
        for program in (message_passing_program(sync=True),
                        lock_increment_program(2)):
            for seed in range(6):
                run = run_on_hardware(program, policy_factory(), SNOOP.with_seed(seed))
                assert is_sc_result(program, run.result)

    def test_cacheless_snoop_rejected(self):
        with pytest.raises(ValueError):
            run_on_hardware(
                store_buffer_program(),
                SCPolicy(),
                SystemConfig(coherence="snoop", caches=False),
            )

    def test_condition5_structural_without_reserve_bits(self):
        """On the atomic FIFO bus, the Section-5.1 conditions hold with no
        counter/reserve machinery at all (they are structural)."""
        from repro.verify.conditions import check_conditions

        program = lock_increment_program(2)
        for seed in range(5):
            run = run_on_hardware(program, AdveHillPolicy(), SNOOP.with_seed(seed))
            assert check_conditions(run).ok
