"""Tests for the axiomatic framework: events, candidates, and models."""

import pytest

from repro.axiomatic import (
    CoherenceModel,
    SCModel,
    TSOModel,
    UnsupportedProgram,
    WeakOrderingDRF,
    allowed_candidates,
    allowed_results,
    enumerate_candidates,
    extract_events,
)
from repro.core.sc import sc_results
from repro.core.types import Condition, OpKind
from repro.litmus.catalog import (
    all_tests,
    coherence_corr,
    dekker_sync,
    iriw,
    load_buffer,
    message_passing,
    store_buffer,
    tas_mutex,
)
from repro.machine.dsl import ThreadBuilder, build_program


class TestEventExtraction:
    def test_events_in_program_order(self):
        program = store_buffer().program
        events = extract_events(program)
        assert len(events) == 4
        assert [e.kind for e in events[:2]] == [OpKind.DATA_WRITE, OpKind.DATA_READ]
        assert events[0].proc == 0 and events[2].proc == 1

    def test_branchy_program_rejected(self):
        program = build_program(
            [ThreadBuilder().label("l").load("r", "x").branch_if(
                Condition.EQ, "r", 0, "l")]
        )
        with pytest.raises(UnsupportedProgram):
            extract_events(program)

    def test_data_dependent_store_becomes_readref(self):
        program = build_program(
            [ThreadBuilder().load("r", "x").store("y", "r")]
        )
        events = extract_events(program)
        from repro.axiomatic.events import ReadRef

        assert isinstance(events[1].write_value, ReadRef)
        assert events[1].write_value.event_uid == events[0].uid

    def test_arithmetic_on_read_rejected(self):
        program = build_program(
            [ThreadBuilder().load("r", "x").add("r", "r", 1).store("y", "r")]
        )
        with pytest.raises(UnsupportedProgram):
            extract_events(program)

    def test_constant_arithmetic_allowed(self):
        program = build_program(
            [ThreadBuilder().mov("a", 3).add("a", "a", 4).store("x", "a")]
        )
        events = extract_events(program)
        assert events[0].write_value == 7


class TestCandidates:
    def test_candidate_count_sb(self):
        # 2 reads x 2 sources each, 1 write per location: 4 candidates,
        # all value-consistent.
        candidates = list(enumerate_candidates(store_buffer().program))
        assert len(candidates) == 4

    def test_rmw_must_read_co_predecessor(self):
        candidates = list(enumerate_candidates(tas_mutex().program))
        # Two RMWs on one location: co has 2 orders; rf fully determined by
        # the RMW atomicity rule -> exactly 2 candidates.
        assert len(candidates) == 2
        for candidate in candidates:
            reads = sorted(candidate.read_values.values())
            assert reads == [0, 1]

    def test_out_of_thin_air_rejected(self):
        """LB with mutually dependent stores: the value-cycle candidate
        (both read 1) must be discarded."""
        p0 = ThreadBuilder().load("r0", "x").store("y", "r0")
        p1 = ThreadBuilder().load("r1", "y").store("x", "r1")
        program = build_program([p0, p1], name="LB+deps")
        for candidate in enumerate_candidates(program):
            result = candidate.result()
            assert result.reads[0][0] == 0 or result.reads[1][0] == 0

    def test_fr_edges_point_to_later_writes(self):
        program = store_buffer().program
        candidate = next(iter(enumerate_candidates(program)))
        for read_uid, write_uid in candidate.fr_edges():
            assert candidate.events[read_uid].is_read
            assert candidate.events[write_uid].is_write


class TestModels:
    STRAIGHT_TESTS = [
        store_buffer(),
        message_passing(),
        load_buffer(),
        coherence_corr(),
        iriw(),
        tas_mutex(),
        dekker_sync(),
    ]

    @pytest.mark.parametrize("test", STRAIGHT_TESTS, ids=lambda t: t.name)
    def test_axiomatic_sc_equals_operational_sc(self, test):
        """The central cross-validation: both SC definitions agree."""
        assert allowed_results(test.program, SCModel()) == sc_results(test.program)

    def test_tso_allows_exactly_store_buffering(self):
        sb = store_buffer()
        tso = allowed_results(sb.program, TSOModel())
        sc = allowed_results(sb.program, SCModel())
        extra = tso - sc
        assert len(extra) == 1
        (result,) = extra
        assert result.reads[0][0] == 0 and result.reads[1][0] == 0

    @pytest.mark.parametrize(
        "test_factory", [message_passing, load_buffer, coherence_corr, iriw],
        ids=lambda f: f.__name__,
    )
    def test_tso_forbids_non_sb_relaxations(self, test_factory):
        test = test_factory()
        results = allowed_results(test.program, TSOModel())
        assert not test.outcome_observed(results)

    def test_coherence_still_forbids_per_location_violations(self):
        test = coherence_corr()
        results = allowed_results(test.program, CoherenceModel())
        assert not test.outcome_observed(results)

    def test_coherence_allows_mp_and_sb(self):
        for test in (store_buffer(), message_passing()):
            results = allowed_results(test.program, CoherenceModel())
            assert test.outcome_observed(results)

    def test_models_are_ordered_by_strength(self):
        for test in self.STRAIGHT_TESTS:
            sc = allowed_results(test.program, SCModel())
            tso = allowed_results(test.program, TSOModel())
            coh = allowed_results(test.program, CoherenceModel())
            assert sc <= tso <= coh

    def test_weak_ordering_drf_contract(self):
        """WO-DRF0 == SC on DRF0 programs, == coherence on racy ones."""
        wo = WeakOrderingDRF()
        drf_test = dekker_sync()  # all accesses synchronize: DRF0
        assert allowed_results(drf_test.program, wo) == allowed_results(
            drf_test.program, SCModel()
        )
        racy = store_buffer()
        assert allowed_results(racy.program, wo) == allowed_results(
            racy.program, CoherenceModel()
        )

    def test_rmw_atomicity_under_all_models(self):
        test = tas_mutex()
        for model in (SCModel(), TSOModel(), CoherenceModel()):
            results = allowed_results(test.program, model)
            assert not test.outcome_observed(results)
