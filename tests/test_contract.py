"""Tests for the Definition-2 contract checker (appears sequentially consistent)."""

import pytest

from repro.core.contract import (
    ContractSearchLimit,
    appears_sc,
    check_weak_ordering,
    is_sc_result,
)
from repro.core.execution import Result
from repro.core.sc import sc_results
from repro.core.types import Condition
from repro.machine.dsl import ThreadBuilder, build_program

from helpers import (
    lock_increment_program,
    message_passing_program,
    store_buffer_program,
)


class TestMembership:
    def test_every_enumerated_result_is_a_member(self):
        program = store_buffer_program()
        for result in sc_results(program):
            assert is_sc_result(program, result)

    def test_forbidden_store_buffer_outcome_rejected(self):
        program = store_buffer_program()
        forbidden = Result.build([[0], [0]], {"x": 1, "y": 1})
        assert not is_sc_result(program, forbidden)

    def test_wrong_final_memory_rejected(self):
        program = store_buffer_program()
        bad = Result.build([[1], [1]], {"x": 0, "y": 1})
        assert not is_sc_result(program, bad)

    def test_wrong_read_count_rejected(self):
        program = store_buffer_program()
        bad = Result.build([[1, 1], [1]], {"x": 1, "y": 1})
        assert not is_sc_result(program, bad)

    def test_wrong_proc_count_rejected(self):
        program = store_buffer_program()
        bad = Result.build([[1]], {"x": 1, "y": 1})
        assert not is_sc_result(program, bad)

    def test_wrong_location_set_rejected(self):
        program = store_buffer_program()
        bad = Result.build([[1], [1]], {"x": 1, "y": 1, "z": 0})
        assert not is_sc_result(program, bad)


class TestSpinPrograms:
    """Membership must handle unbounded spin histories."""

    def test_pumped_spin_history_is_member(self):
        program = message_passing_program(sync=True)
        # Consumer spun four times (flag still 1) before observing 0, then
        # read data=42.  No finite enumeration contains this, but it is SC.
        pumped = Result.build([[], [1, 1, 1, 1, 0, 42]], {"data": 42, "flag": 0})
        assert is_sc_result(program, pumped)

    def test_minimal_spin_history_is_member(self):
        program = message_passing_program(sync=True)
        minimal = Result.build([[], [0, 42]], {"data": 42, "flag": 0})
        assert is_sc_result(program, minimal)

    def test_stale_data_after_flag_rejected(self):
        """Reading flag==0 then data==0 is not SC for the synchronized MP."""
        program = message_passing_program(sync=True)
        stale = Result.build([[], [0, 0]], {"data": 42, "flag": 0})
        assert not is_sc_result(program, stale)

    def test_lock_program_pumped_acquire(self):
        program = lock_increment_program(2)
        # P1 failed the TestAndSet twice before succeeding.
        pumped = Result.build(
            [[0, 0], [1, 1, 0, 1]], {"lock": 0, "count": 2}
        )
        assert is_sc_result(program, pumped)

    def test_lock_program_lost_update_rejected(self):
        program = lock_increment_program(2)
        lost = Result.build([[0, 0], [0, 0]], {"lock": 0, "count": 1})
        assert not is_sc_result(program, lost)


class TestAppearsSC:
    def test_clean_batch(self):
        program = store_buffer_program()
        report = appears_sc(program, sc_results(program))
        assert report.appears_sc
        assert report.results_checked == 3
        assert not report.violations

    def test_batch_with_violation(self):
        program = store_buffer_program()
        observed = list(sc_results(program)) + [
            Result.build([[0], [0]], {"x": 1, "y": 1})
        ]
        report = appears_sc(program, observed)
        assert not report.appears_sc
        assert len(report.violations) == 1

    def test_duplicate_results_checked_once(self):
        program = store_buffer_program()
        result = next(iter(sc_results(program)))
        report = appears_sc(program, [result, result, result])
        assert report.results_checked == 1

    def test_report_bool_protocol(self):
        program = store_buffer_program()
        assert appears_sc(program, sc_results(program))


class TestWeakOrderingVerdict:
    def test_racy_program_non_sc_results_are_permitted(self):
        """Definition 2 places no obligation on racy programs."""
        program = store_buffer_program()  # violates DRF0
        non_sc = Result.build([[0], [0]], {"x": 1, "y": 1})
        verdict = check_weak_ordering(program, program_obeys_model=False,
                                      observed_results=[non_sc])
        assert not verdict.contract.appears_sc
        assert verdict.hardware_ok  # permitted: the premise fails

    def test_model_obeying_program_with_sc_results_ok(self):
        program = message_passing_program(sync=True)
        good = Result.build([[], [0, 42]], {"data": 42, "flag": 0})
        verdict = check_weak_ordering(program, True, [good])
        assert verdict.hardware_ok

    def test_model_obeying_program_with_non_sc_result_fails(self):
        program = message_passing_program(sync=True)
        bad = Result.build([[], [0, 0]], {"data": 42, "flag": 0})
        verdict = check_weak_ordering(program, True, [bad])
        assert not verdict.hardware_ok


class TestSearchLimits:
    def test_state_budget_enforced(self):
        program = lock_increment_program(3)
        pumped = Result.build(
            [[0, 0], [1, 0, 1], [1, 1, 0, 2]], {"lock": 0, "count": 3}
        )
        with pytest.raises(ContractSearchLimit):
            is_sc_result(program, pumped, max_states=5)
