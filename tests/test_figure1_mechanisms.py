"""Mechanism-isolation tests for the Figure-1 violations.

Figure 1 names a *specific* mechanism per configuration.  These tests turn
each mechanism off and verify the violation disappears -- evidence that
the simulator violates SC for the reason the paper says, not accidentally.
"""

import pytest

from repro.hw import RelaxedPolicy
from repro.sim.system import SystemConfig, run_on_hardware

from helpers import store_buffer_program

SEEDS = range(40)


def violation_observed(config):
    program = store_buffer_program()
    for seed in SEEDS:
        result = run_on_hardware(
            program, RelaxedPolicy(), config.with_seed(seed)
        ).result
        if result.reads[0][0] == 0 and result.reads[1][0] == 0:
            return True
    return False


class TestBusNoCache:
    """Paper: possible 'if the accesses of a processor are issued out of
    order, or if reads are allowed to pass writes in write buffers'."""

    def test_write_buffer_enables_violation(self):
        assert violation_observed(
            SystemConfig(topology="bus", caches=False, write_buffer=True)
        )

    def test_without_write_buffer_fifo_bus_is_safe(self):
        """In-order issue + FIFO bus + no write buffer: no reordering left."""
        assert not violation_observed(
            SystemConfig(topology="bus", caches=False, write_buffer=False)
        )


class TestNetworkNoCache:
    """Paper: possible 'even if accesses of a processor are issued in
    program order, but reach memory modules in a different order'."""

    def test_message_reordering_enables_violation(self):
        assert violation_observed(
            SystemConfig(topology="network", caches=False, write_buffer=False)
        )

    def test_fifo_network_without_buffer_is_safe(self):
        """Restore delivery order and remove the buffer: both of Lamport's
        hazards gone."""
        assert not violation_observed(
            SystemConfig(
                topology="network",
                caches=False,
                write_buffer=False,
                fifo_per_pair=True,
                net_jitter=6,
            )
        )

    def test_fifo_network_with_buffer_still_violates(self):
        """The write buffer alone suffices even on an ordered network."""
        assert violation_observed(
            SystemConfig(
                topology="network",
                caches=False,
                write_buffer=True,
                fifo_per_pair=True,
            )
        )


class TestBusCache:
    """Paper: even with coherence, possible 'if the accesses of a processor
    are issued out-of-order, or if reads are allowed to pass writes in
    write buffers'."""

    def test_cache_write_buffer_enables_violation(self):
        assert violation_observed(
            SystemConfig(topology="bus", caches=True, write_buffer=True)
        )

    def test_without_buffer_fifo_bus_coherent_caches_are_safe(self):
        assert not violation_observed(
            SystemConfig(topology="bus", caches=True, write_buffer=False)
        )


class TestNetworkCache:
    """Paper: possible 'even if accesses ... are issued and reach memory
    modules in program order, but do not complete in program order'."""

    def test_incomplete_invalidations_enable_violation(self):
        # No write buffer needed: the miss-latency overlap suffices.
        assert violation_observed(
            SystemConfig(topology="network", caches=True, write_buffer=False)
        )
