"""Tests for the persistent content-addressed verdict store.

The store's contract has three legs: warm runs are *byte-identical* to
cold runs (persistence must never change an answer), damaged bytes are
tolerated and quarantined (never crash, never serve a bad verdict), and
any number of processes may flush into one directory concurrently.
"""

import json
import multiprocessing
import os

import pytest

from repro.cli import main
from repro.hw import AdveHillPolicy, Definition1Policy
from repro.sim.system import SystemConfig
from repro.verify import SEMANTICS_VERSION, VerdictStore, VerificationEngine
from repro.verify.cache import program_fingerprint
from repro.verify.store import (
    STORE_FORMAT,
    _line_checksum,
    cell_key,
    decode_program,
    encode_program,
)

from helpers import message_passing_program, store_buffer_program

FACTORIES = {"adve-hill": AdveHillPolicy, "definition1": Definition1Policy}


def programs():
    return [message_passing_program(sync=True), store_buffer_program()]


def sweep(cache_dir=None, jobs=1, seeds=6):
    engine = VerificationEngine(jobs=jobs, cache_dir=cache_dir)
    evidence = engine.definition2_sweep(
        programs(), FACTORIES, SystemConfig(), seeds=range(seeds)
    )
    if engine.store is not None:
        engine.store.close()
    return engine, evidence


def segment_paths(cache_dir):
    return sorted(
        os.path.join(cache_dir, name)
        for name in os.listdir(cache_dir)
        if name.startswith("seg-") and name.endswith(".jsonl")
    )


def reencode(record: dict) -> str:
    """A record line with a *consistent* checksum (the poisoning case)."""
    record = {k: v for k, v in record.items() if k != "c"}
    record["c"] = _line_checksum(json.dumps(record, sort_keys=True))
    return json.dumps(record, sort_keys=True)


class TestWarmIdentity:
    """Leg one: a warm run must reproduce the cold run bit for bit."""

    def test_warm_rows_identical_and_runs_reused(self, tmp_path):
        cache = str(tmp_path / "cache")
        _, cold = sweep(cache)
        warm_engine, warm = sweep(cache)
        assert warm.rows == cold.rows
        assert warm.contract_holds == cold.contract_holds
        assert warm_engine.store.stats.runs_reused > 0
        assert warm_engine.store.stats.loaded_sc > 0
        # a second warm run flushes nothing new
        third_engine, _ = sweep(cache)
        assert third_engine.store.stats.flushed_sc == 0
        assert third_engine.store.stats.flushed_runs == 0

    def test_store_matches_storeless_run(self, tmp_path):
        _, stored = sweep(str(tmp_path / "cache"))
        _, plain = sweep(None)
        assert stored.rows == plain.rows

    def test_warm_parallel_matches_cold_serial(self, tmp_path):
        cache = str(tmp_path / "cache")
        _, cold = sweep(cache, jobs=1)
        _, warm = sweep(cache, jobs=2)
        assert warm.rows == cold.rows

    def test_cost_aware_schedule_changes_nothing(self, tmp_path):
        """Recorded costs reorder dispatch; output must not move."""
        cache = str(tmp_path / "cache")
        sweep(cache, seeds=4)
        # skew the recorded costs wildly so the planner reorders + rechunks
        store = VerdictStore(cache)
        state = store.warm()
        assert state.costs, "sweep should have recorded cell costs"
        first = sorted(state.costs)[0]
        store.record_cost(first, runs=1, wall_us=10_000_000)
        store.close()
        # widen the seed range: positions 4..11 have no stored summaries,
        # so hardware genuinely re-runs under the skewed schedule
        _, plain = sweep(None, seeds=12)
        _, rescheduled = sweep(cache, seeds=12, jobs=2)
        assert rescheduled.rows == plain.rows


class TestIntegrity:
    """Leg two: damage is tolerated, quarantined, and never served."""

    def test_torn_tail_dropped_segment_kept(self, tmp_path):
        cache = str(tmp_path / "cache")
        sweep(cache)
        path = segment_paths(cache)[0]
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "sc", "fp": "dead', )  # killed mid-append
        store = VerdictStore(cache)
        state = store.load()
        assert store.stats.dropped_lines == 1
        assert store.stats.quarantined_segments == 0
        assert state.sc  # salvage succeeded
        assert os.path.exists(path)  # torn tail is not corruption

    def test_truncated_mid_line_tail(self, tmp_path):
        cache = str(tmp_path / "cache")
        sweep(cache)
        path = segment_paths(cache)[0]
        with open(path, "r", encoding="utf-8") as fh:
            data = fh.read()
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(data[: len(data) - 40])  # cut into the last record
        store = VerdictStore(cache)
        store.load()
        assert store.stats.dropped_lines == 1
        assert store.stats.quarantined_segments == 0

    def test_midfile_corruption_quarantines_segment(self, tmp_path):
        cache = str(tmp_path / "cache")
        _, cold = sweep(cache)
        path = segment_paths(cache)[0]
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        lines[len(lines) // 2] = lines[len(lines) // 2][:-10] + 'corrupted"'
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        store = VerdictStore(cache)
        state = store.load()  # must not raise
        assert store.stats.quarantined_segments == 1
        assert not segment_paths(cache)  # moved out of the live set
        quarantined = os.listdir(os.path.join(cache, "quarantine"))
        assert len(quarantined) == 1
        assert state.sc or state.runs  # surviving records salvaged
        # and the sweep still answers correctly from the salvaged state
        _, warm = sweep(cache)
        assert warm.rows == cold.rows

    def test_bad_header_quarantines_whole_segment(self, tmp_path):
        cache = str(tmp_path / "cache")
        sweep(cache)
        path = segment_paths(cache)[0]
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        lines[0] = '{"not": "a header"}'
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        store = VerdictStore(cache)
        state = store.load()
        assert store.stats.quarantined_segments == 1
        assert not state.sc and not state.runs  # nothing trusted

    def test_consistently_poisoned_verdict_caught_by_audit(self, tmp_path):
        """A flipped verdict with a rewritten checksum survives loading
        (checksums only catch *inconsistent* damage) -- ``audit`` is the
        defense, exactly as for the in-memory caches."""
        cache = str(tmp_path / "cache")
        sweep(cache)
        path = segment_paths(cache)[0]
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        flipped = False
        for index, line in enumerate(lines):
            record = json.loads(line)
            if record.get("kind") == "sc":
                record["v"] = not record["v"]
                lines[index] = reencode(record)
                flipped = True
                break
        assert flipped
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        report = VerdictStore(cache).audit()
        assert not report.ok
        assert any(entry.startswith("sc ") for entry in report.disagreements)

    def test_semantics_version_mismatch_is_cold_start(self, tmp_path):
        cache = str(tmp_path / "cache")
        sweep(cache)
        store = VerdictStore(cache, semantics="d2-oracle-999")
        state = store.load()
        assert store.stats.stale_segments == 1
        assert not state.sc and not state.runs and not state.costs
        # the real version still reads its own segments
        fresh = VerdictStore(cache)
        assert fresh.load().sc

    def test_old_format_segment_skipped(self, tmp_path):
        cache = str(tmp_path / "cache")
        os.makedirs(cache)
        header = {
            "kind": "meta",
            "format": STORE_FORMAT + 1,
            "semantics": SEMANTICS_VERSION,
        }
        with open(os.path.join(cache, "seg-1-0.jsonl"), "w") as fh:
            fh.write(reencode(header) + "\n")
        store = VerdictStore(cache)
        store.load()
        assert store.stats.stale_segments == 1
        assert store.stats.quarantined_segments == 0


def _flush_one(args):
    cache, index = args
    program = (
        message_passing_program(sync=True) if index else store_buffer_program()
    )
    engine = VerificationEngine(jobs=1, cache_dir=cache)
    engine.definition2_sweep(
        [program], FACTORIES, SystemConfig(), seeds=range(4)
    )
    engine.store.close()
    return True


class TestConcurrency:
    """Leg three: many writers, one directory, no locks."""

    def test_two_processes_flush_same_cache_dir(self, tmp_path):
        cache = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        with ctx.Pool(2) as pool:
            assert all(pool.map(_flush_one, [(cache, 0), (cache, 1)]))
        store = VerdictStore(cache)
        state = store.load()
        assert store.stats.quarantined_segments == 0
        assert len(state.programs) == 2  # both writers' programs landed
        # and the merged store warms a full-grid sweep
        engine, _ = sweep(cache, seeds=4)
        assert engine.store.stats.runs_reused > 0

    def test_same_process_reopen_gets_fresh_segment(self, tmp_path):
        """The O_EXCL retry path: one pid, several writer instances."""
        cache = str(tmp_path / "cache")
        program = store_buffer_program()
        fingerprint = program_fingerprint(program)
        for index in range(3):
            store = VerdictStore(cache)
            store.warm()
            store.record_cost(cell_key(fingerprint, "x"), 1, 100 + index)
            store.close()
        assert len(segment_paths(cache)) == 3
        state = VerdictStore(cache).load()
        assert state.costs[cell_key(fingerprint, "x")].runs == 3


class TestFingerprintMemo:
    def test_memoized_on_instance(self):
        program = store_buffer_program()
        assert "_content_fingerprint" not in program.__dict__
        first = program_fingerprint(program)
        assert program.__dict__["_content_fingerprint"] == first
        assert program_fingerprint(program) == first

    def test_memo_matches_fresh_instance(self):
        assert program_fingerprint(store_buffer_program()) == (
            program_fingerprint(store_buffer_program())
        )


class TestParallelStats:
    """Worker-side cache stats must fold back into the parent."""

    def test_fuzz_jobs_reports_hits(self):
        serial = VerificationEngine(jobs=1)
        serial.fuzz(range(4))
        parallel = VerificationEngine(jobs=2)
        parallel.fuzz(range(4))
        assert parallel.sc_cache.stats.lookups > 0
        assert parallel.sc_cache.stats.hits == serial.sc_cache.stats.hits
        assert parallel.sc_cache.stats.misses == serial.sc_cache.stats.misses
        counters = parallel.metrics_snapshot().as_dict()["counters"]
        assert counters["engine.sc_cache.hits"] == (
            parallel.sc_cache.stats.hits
        )


class TestProgramCodec:
    def test_roundtrip_preserves_fingerprint(self):
        for program in programs():
            decoded = decode_program(encode_program(program))
            assert program_fingerprint(decoded) == program_fingerprint(program)
            assert decoded.threads == program.threads


class TestMaintenance:
    def test_compact_folds_segments_and_preserves_state(self, tmp_path):
        cache = str(tmp_path / "cache")
        sweep(cache)
        sweep(cache, seeds=8)  # second segment with partial overlap
        before = VerdictStore(cache).load()
        store = VerdictStore(cache)
        segments, records = store.compact()
        assert segments == 2
        assert records > 0
        assert len(segment_paths(cache)) == 1
        after = VerdictStore(cache).load()
        assert after.sc == before.sc
        assert after.drf0 == before.drf0
        assert after.runs == before.runs
        assert {k: vars(v) for k, v in after.costs.items()} == {
            k: vars(v) for k, v in before.costs.items()
        }

    def test_audit_clean_store_passes(self, tmp_path):
        cache = str(tmp_path / "cache")
        sweep(cache)
        report = VerdictStore(cache).audit()
        assert report.ok
        assert report.checked > 0
        assert report.unauditable == 0

    def test_audit_sample_is_deterministic(self, tmp_path):
        cache = str(tmp_path / "cache")
        sweep(cache)
        first = VerdictStore(cache).audit(sample=3)
        second = VerdictStore(cache).audit(sample=3)
        assert first.checked == second.checked == 3


class TestCacheCLI:
    def test_stats_audit_compact(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(
            ["sweep", "SB", "--seeds", "4", "--cache-dir", cache]
        ) in (0, 1)
        capsys.readouterr()
        assert main(["cache", "stats", cache]) == 0
        assert "sc_verdicts" in capsys.readouterr().out
        assert main(["cache", "audit", cache, "--sample", "5"]) == 0
        capsys.readouterr()
        assert main(["cache", "compact", cache]) == 0
        capsys.readouterr()
        assert main(["cache", "stats", cache, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["segments"] == 1
        assert summary["sc_verdicts"] > 0

    def test_audit_detects_poisoning(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        main(["sweep", "SB", "--seeds", "4", "--cache-dir", cache])
        path = segment_paths(cache)[0]
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.read().splitlines()
        for index, line in enumerate(lines):
            record = json.loads(line)
            if record.get("kind") == "sc":
                record["v"] = not record["v"]
                lines[index] = reencode(record)
                break
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\n".join(lines) + "\n")
        assert main(["cache", "audit", cache]) == 1
        capsys.readouterr()

    def test_missing_dir_is_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main(["cache", "audit", str(tmp_path / "nope")])
        assert excinfo.value.code == 2

    def test_sweep_cache_dir_identical_stdout(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        argv = ["sweep", "MP", "SB", "--seeds", "4", "--cache-dir", cache]
        assert main(argv) == 0
        cold_out = capsys.readouterr().out
        assert main(argv) == 0
        warm_out = capsys.readouterr().out
        assert warm_out == cold_out
