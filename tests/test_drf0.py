"""Tests for race detection and the DRF0/DRF1 program verdicts."""

import pytest

from repro.core.drf0 import (
    check_program,
    check_program_sampled,
    obeys_drf0,
    races_in_execution,
    races_in_execution_vc,
)
from repro.core.models import DRF0_MODEL, DRF1_MODEL
from repro.core.sc import random_sc_execution
from repro.core.types import Condition, OpKind
from repro.machine.dsl import ThreadBuilder, build_program

from helpers import (
    execution_from_specs,
    lock_increment_program,
    message_passing_program,
    racy_program,
    store_buffer_program,
)

R, W = OpKind.DATA_READ, OpKind.DATA_WRITE
SR, SW, SRW = OpKind.SYNC_READ, OpKind.SYNC_WRITE, OpKind.SYNC_RMW


class TestRacesInExecution:
    def test_unsynchronized_write_read_is_a_race(self):
        execution = execution_from_specs(
            [(0, W, "x", None, 1), (1, R, "x", 1, None)], num_procs=2
        )
        races = races_in_execution(execution)
        assert len(races) == 1
        assert races[0].first.proc == 0 and races[0].second.proc == 1

    def test_sync_chain_orders_accesses(self):
        """W(x); S(s) || S(s); R(x) -- ordered by hb, no race."""
        execution = execution_from_specs(
            [
                (0, W, "x", None, 1),
                (0, SW, "s", None, 0),
                (1, SRW, "s", 0, 1),
                (1, R, "x", 1, None),
            ],
            num_procs=2,
        )
        assert races_in_execution(execution) == []

    def test_sync_on_wrong_location_does_not_order(self):
        """Synchronizing on different locations leaves the conflict racy."""
        execution = execution_from_specs(
            [
                (0, W, "x", None, 1),
                (0, SW, "s", None, 0),
                (1, SRW, "t", 0, 1),
                (1, R, "x", 1, None),
            ],
            num_procs=2,
        )
        assert races_in_execution(execution)

    def test_transitive_sync_chain_through_third_processor(self):
        """The Section-4 chain: P0 -> (s) -> P1 -> (t) -> P2 orders x accesses."""
        execution = execution_from_specs(
            [
                (0, W, "x", None, 1),
                (0, SW, "s", None, 1),
                (1, SRW, "s", 1, 2),
                (1, SW, "t", None, 1),
                (2, SRW, "t", 1, 2),
                (2, R, "x", 1, None),
            ],
            num_procs=3,
        )
        assert races_in_execution(execution) == []

    def test_same_processor_never_races(self):
        execution = execution_from_specs(
            [(0, W, "x", None, 1), (0, R, "x", 1, None)], num_procs=1
        )
        assert races_in_execution(execution) == []

    def test_read_read_no_race(self):
        execution = execution_from_specs(
            [(0, R, "x", 0, None), (1, R, "x", 0, None)], num_procs=2
        )
        assert races_in_execution(execution) == []

    def test_data_read_of_sync_location_races_with_sync_write(self):
        """Spinning on a barrier count with a *data* read is a DRF0 race
        (the paper's Section-6 example of a restricted race DRF0 forbids)."""
        execution = execution_from_specs(
            [(1, R, "s", 0, None), (0, SW, "s", None, 0)], num_procs=2
        )
        assert races_in_execution(execution)

    def test_sync_sync_pair_never_races_under_drf0(self):
        execution = execution_from_specs(
            [(0, SRW, "s", 0, 1), (1, SRW, "s", 1, 1)], num_procs=2
        )
        assert races_in_execution(execution, DRF0_MODEL) == []


class TestDRF1Refinement:
    def test_read_only_sync_does_not_release_under_drf1(self):
        """P0: W(x); Test(s)   P1: TestAndSet(s); R(x)

        Under DRF0 the Test/TestAndSet pair is so-ordered, so W(x) hb R(x).
        Under DRF1 a read-only sync cannot order the issuing processor's
        previous accesses, so the x accesses race.
        """
        execution = execution_from_specs(
            [
                (0, W, "x", None, 1),
                (0, SR, "s", 0, None),
                (1, SRW, "s", 0, 1),
                (1, R, "x", 1, None),
            ],
            num_procs=2,
        )
        assert races_in_execution(execution, DRF0_MODEL) == []
        drf1_races = races_in_execution(execution, DRF1_MODEL)
        assert drf1_races
        assert {r.first.location for r in drf1_races} == {"x"}

    def test_write_sync_still_releases_under_drf1(self):
        execution = execution_from_specs(
            [
                (0, W, "x", None, 1),
                (0, SW, "s", None, 0),
                (1, SR, "s", 0, None),
                (1, R, "x", 1, None),
            ],
            num_procs=2,
        )
        assert races_in_execution(execution, DRF1_MODEL) == []

    def test_sync_sync_conflicts_exempt_under_drf1(self):
        execution = execution_from_specs(
            [(0, SR, "s", 1, None), (1, SW, "s", None, 0)], num_procs=2
        )
        # read-only sync then write sync: unordered under DRF1 but exempt.
        assert races_in_execution(execution, DRF1_MODEL) == []


class TestVectorClockAgreement:
    """The vector-clock detector must agree with the closure-based oracle."""

    @pytest.mark.parametrize("seed", range(12))
    @pytest.mark.parametrize(
        "program_factory",
        [
            store_buffer_program,
            racy_program,
            lambda: message_passing_program(sync=True),
            lambda: message_passing_program(sync=False),
            lambda: lock_increment_program(2),
        ],
    )
    def test_detectors_agree_on_race_existence(self, program_factory, seed):
        execution = random_sc_execution(program_factory(), seed)
        for model in (DRF0_MODEL, DRF1_MODEL):
            slow = races_in_execution(execution, model)
            fast = races_in_execution_vc(execution, model)
            assert bool(slow) == bool(fast)

    def test_detectors_agree_on_race_pairs_for_small_trace(self):
        execution = execution_from_specs(
            [
                (0, W, "x", None, 1),
                (1, R, "x", 1, None),
                (1, W, "y", None, 2),
                (0, R, "y", 2, None),
            ],
            num_procs=2,
        )
        slow = {(r.first, r.second) for r in races_in_execution(execution)}
        fast = {(r.first, r.second) for r in races_in_execution_vc(execution)}
        assert slow == fast
        assert len(slow) == 2


class TestProgramVerdicts:
    def test_store_buffer_violates_drf0(self):
        report = check_program(store_buffer_program())
        assert not report.obeys
        assert report.race is not None
        assert report.witness is not None

    def test_racy_program_violates(self):
        assert not obeys_drf0(racy_program())

    def test_sync_message_passing_obeys(self):
        assert obeys_drf0(message_passing_program(sync=True))

    def test_data_message_passing_violates(self):
        assert not obeys_drf0(message_passing_program(sync=False))

    def test_lock_program_obeys(self):
        assert obeys_drf0(lock_increment_program(2))

    def test_ttas_lock_program_obeys_drf0(self):
        assert obeys_drf0(lock_increment_program(2, ttas=True))

    def test_report_counts_executions(self):
        report = check_program(message_passing_program(sync=True))
        assert report.obeys
        assert report.executions_checked > 0
        assert report.complete

    def test_read_sync_release_program_races_under_both_models(self):
        """A program whose only cross-thread ordering could come from a
        read-only sync racing a TestAndSet: some execution completes the
        TestAndSet first, leaving the x accesses unordered -- so the program
        violates DRF0 as well as DRF1 (the models differ per execution, not
        on this program)."""
        p0 = ThreadBuilder().store("x", 1).sync_load("r0", "s")
        p1 = ThreadBuilder().test_and_set("r1", "s").load("r2", "x")
        program = build_program([p0, p1], name="test-as-release")
        assert not check_program(program, DRF0_MODEL).obeys
        assert not check_program(program, DRF1_MODEL).obeys

    def test_drf0_clean_suite_is_also_drf1_clean(self):
        """For the idiomatic programs (locks, flag passing) the Section-6
        refinement does not reject anything DRF0 accepts."""
        for program in (
            message_passing_program(sync=True),
            lock_increment_program(2),
            lock_increment_program(2, ttas=True),
        ):
            assert check_program(program, DRF0_MODEL).obeys
            assert check_program(program, DRF1_MODEL).obeys

    def test_report_bool_protocol(self):
        assert check_program(message_passing_program(sync=True))
        assert not check_program(racy_program())


class TestSampledVerdicts:
    def test_sampled_finds_blatant_race(self):
        report = check_program_sampled(racy_program(), seeds=range(10))
        assert not report.obeys
        assert not report.complete

    def test_sampled_clean_on_race_free_program(self):
        report = check_program_sampled(
            lock_increment_program(3), seeds=range(10)
        )
        assert report.obeys
        assert not report.complete  # sampling is never definitive
