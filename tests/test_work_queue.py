"""Tests for the monitor-style work-queue workload."""

import pytest

from repro.core.contract import is_sc_result
from repro.core.drf0 import check_program_sampled
from repro.hw import (
    AdveHillPolicy,
    Definition1Policy,
    ReleaseConsistencyPolicy,
    SCPolicy,
)
from repro.sim.system import SystemConfig, run_on_hardware
from repro.workloads import (
    consumed_total,
    expected_total,
    work_queue_workload,
)

POLICIES = [SCPolicy, Definition1Policy, ReleaseConsistencyPolicy,
            AdveHillPolicy, lambda: AdveHillPolicy(drf1_optimized=True)]


class TestExactlyOnce:
    @pytest.mark.parametrize("policy_factory", POLICIES)
    def test_every_item_consumed_exactly_once(self, policy_factory):
        program = work_queue_workload(num_consumers=2, num_items=4)
        for seed in range(6):
            run = run_on_hardware(program, policy_factory(), SystemConfig(seed=seed))
            assert consumed_total(run.result, 2) == expected_total(4)
            assert run.result.memory_value("head") == 4
            assert run.result.memory_value("tail") == 4

    def test_three_consumers(self):
        program = work_queue_workload(num_consumers=3, num_items=5)
        for seed in range(4):
            run = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=seed))
            assert consumed_total(run.result, 3) == expected_total(5)

    def test_single_consumer_gets_everything(self):
        program = work_queue_workload(num_consumers=1, num_items=3)
        run = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=0))
        assert run.result.memory_value("tally0") == expected_total(3)


class TestDiscipline:
    def test_sampled_drf0(self):
        program = work_queue_workload(num_consumers=2, num_items=3)
        assert check_program_sampled(program, seeds=range(8)).obeys

    def test_lockset_discipline_clean(self):
        """The monitor paradigm is exactly what Eraser certifies."""
        from repro.analysis import analyze_program

        report = analyze_program(
            work_queue_workload(num_consumers=2, num_items=2), seeds=range(6)
        )
        assert report.clean
        assert report.locksets.get("head") == frozenset({"qlock"})
        assert report.locksets.get("tail") == frozenset({"qlock"})

    @pytest.mark.parametrize("policy_factory", POLICIES[:4])
    def test_contract(self, policy_factory):
        program = work_queue_workload(num_consumers=2, num_items=3)
        for seed in range(5):
            run = run_on_hardware(program, policy_factory(), SystemConfig(seed=seed))
            assert is_sc_result(program, run.result)

    def test_tiny_cache_still_exactly_once(self):
        program = work_queue_workload(num_consumers=2, num_items=3)
        run = run_on_hardware(
            program, AdveHillPolicy(), SystemConfig(seed=1, cache_capacity=2)
        )
        assert consumed_total(run.result, 2) == expected_total(3)
