"""Tests for intra-cell parallel exploration (``repro.core.parallel``).

The sharded explorer makes one promise: for every result-set or
verdict-only query, the merged output is bit-identical to the serial
explorer's -- result sets are order-independent, so the union of
per-shard result sets equals the serial set exactly.  These tests check
that promise across every mode (naive, guided membership, DPOR), plus
the resilience machinery (crashed shard workers, Ctrl-C hygiene) and the
cap-error diagnostics.
"""

import multiprocessing
import os

import pytest

from repro.core import parallel
from repro.core.contract import ContractSearchLimit, is_sc_result
from repro.core.dpor import check_program_dpor, sc_results_dpor
from repro.core.drf0 import check_program, races_in_execution_vc
from repro.core.execution import Result
from repro.core.models import DRF0_MODEL
from repro.core.sc import (
    ExplorationCapError,
    ExplorationConfig,
    ExplorationIncomplete,
    explore,
    sc_results,
)
from repro.litmus.catalog import by_name
from repro.machine.generator import GeneratorConfig, random_program
from repro.verify.engine import Failpoint, VerificationEngine, _balanced_chunks

pool_available = pytest.mark.skipif(
    not parallel.can_fork(), reason="fork start method unavailable"
)

CATALOG_NAMES = ("SB", "MP", "MP+sync", "LB", "IRIW", "SB+sync", "TAS")


def _generated(seed: int):
    return random_program(
        seed, GeneratorConfig(max_threads=3, max_ops_per_thread=4)
    )


# ----------------------------------------------------------------------
# Bit-identical merges, mode by mode
# ----------------------------------------------------------------------


@pool_available
class TestEquivalence:
    @pytest.mark.parametrize("name", CATALOG_NAMES)
    def test_sc_results_catalog(self, name):
        program = by_name(name).program
        serial = sc_results(program)
        sharded = sc_results(program, ExplorationConfig(explore_jobs=2))
        assert serial == sharded

    @pytest.mark.parametrize("seed", range(6))
    def test_sc_results_generated(self, seed):
        program = _generated(seed)
        serial = sc_results(program)
        sharded = sc_results(program, ExplorationConfig(explore_jobs=2))
        assert serial == sharded

    @pytest.mark.parametrize("name", CATALOG_NAMES)
    def test_drf0_verdict(self, name):
        program = by_name(name).program
        serial = check_program(program)
        sharded = check_program(
            program, config=ExplorationConfig(explore_jobs=2)
        )
        assert serial.obeys == sharded.obeys
        if not sharded.obeys:
            # The winning shard's witness need not be the serial DFS-first
            # one, but it must be a real racy execution: replaying it
            # finds the reported race.
            assert sharded.witness is not None and sharded.witness.ops
            races = races_in_execution_vc(sharded.witness, DRF0_MODEL)
            assert sharded.race in races

    @pytest.mark.parametrize("seed", range(6))
    def test_dpor_result_set(self, seed):
        program = _generated(seed)
        serial = sc_results_dpor(program)
        sharded = sc_results_dpor(
            program, config=ExplorationConfig(explore_jobs=2)
        )
        assert serial == sharded

    @pytest.mark.parametrize("seed", range(6))
    def test_dpor_verdict(self, seed):
        program = _generated(seed)
        serial = check_program_dpor(program)
        sharded = check_program_dpor(
            program, config=ExplorationConfig(explore_jobs=2)
        )
        assert serial.obeys == sharded.obeys

    def test_membership_spin_pumped_result(self):
        # Regression: hardware results of spin-loop programs carry
        # arbitrary spin counts.  The guided search has no livelock-cycle
        # pruning (the read history bounds it), and neither may the
        # phase-1 prefix enumeration -- an on-path cut would sever the
        # exact paths a pumped history needs.
        program = by_name("MP+sync").program
        pumped = Result(
            reads=((), (1, 1, 0, 1)),
            final_memory=(("flag", 0), ("x", 1)),
        )
        assert is_sc_result(program, pumped)
        assert is_sc_result(program, pumped, explore_jobs=2)

    @pytest.mark.parametrize("name", ("SB", "MP+sync"))
    def test_membership_negative(self, name):
        program = by_name(name).program
        impossible = Result(
            reads=tuple(() for _ in range(program.num_procs)),
            final_memory=tuple(
                (loc, 77) for loc in sorted(program.initial_memory)
            ),
        )
        assert not is_sc_result(program, impossible)
        assert not is_sc_result(program, impossible, explore_jobs=2)

    @pytest.mark.parametrize("seed", range(4))
    def test_membership_generated(self, seed):
        program = _generated(seed)
        results = sorted(sc_results(program), key=repr)
        for result in results[:3]:
            assert is_sc_result(program, result, explore_jobs=2)


# ----------------------------------------------------------------------
# Serial fallbacks and trace materialization (satellite: record_trace)
# ----------------------------------------------------------------------


class TestTraceMaterialization:
    def test_collect_executions_falls_back_serial(self):
        # explore_jobs only shards result-set-only queries; asking for
        # the execution list must still produce full operation traces.
        program = by_name("SB").program
        exploration = explore(
            program, ExplorationConfig(dedup=False, explore_jobs=2)
        )
        assert exploration.executions
        assert all(e.ops for e in exploration.executions)

    def test_drf0_witness_has_full_trace(self):
        # The verdict-only path explores on trace-free engines; the racy
        # witness must still materialize (replayed on a recording
        # engine) with a bit-identical operation trace.
        program = by_name("SB").program
        report = check_program(program)
        assert not report.obeys
        assert report.witness is not None and report.witness.ops
        assert report.race is not None
        assert report.race in races_in_execution_vc(
            report.witness, DRF0_MODEL
        )


# ----------------------------------------------------------------------
# Cap errors (satellite: ExplorationCapError diagnostics)
# ----------------------------------------------------------------------


class TestCapError:
    def test_alias_and_subclass(self):
        assert ExplorationIncomplete is ExplorationCapError
        assert issubclass(ContractSearchLimit, ExplorationCapError)

    def test_serial_cap_carries_states(self):
        program = _generated(0)
        with pytest.raises(ExplorationCapError) as excinfo:
            sc_results(program, ExplorationConfig(max_states=3))
        assert excinfo.value.states is not None
        assert excinfo.value.states > 3
        assert "states=" in str(excinfo.value)

    @pool_available
    def test_sharded_cap_carries_shard_counts(self):
        program = _generated(0)
        with pytest.raises(ExplorationCapError) as excinfo:
            sc_results(
                program,
                ExplorationConfig(max_states=3, explore_jobs=2),
            )
        assert excinfo.value.states is not None
        assert excinfo.value.frontier is not None
        assert excinfo.value.shards is not None
        assert "frontier=" in str(excinfo.value)

    @pool_available
    def test_sharded_member_cap_is_contract_limit(self):
        # A non-SC read history (flag=0 implies x=1 under program order),
        # so no shard can hit -- the tiny state budget must trip.  (When
        # a hit and a cap race, the hit wins: membership is existence.)
        program = by_name("MP+sync").program
        impossible = Result(
            reads=((), (1, 1, 0, 0)),
            final_memory=(("flag", 0), ("x", 1)),
        )
        with pytest.raises(ContractSearchLimit) as excinfo:
            parallel.parallel_is_sc_result(
                program,
                [tuple(v) for v in impossible.reads],
                tuple(sorted(impossible.final_memory)),
                1,  # max_states
                2,  # jobs
            )
        assert excinfo.value.shards is not None


# ----------------------------------------------------------------------
# Crash paths (satellite: shard-worker failpoints)
# ----------------------------------------------------------------------


@pool_available
class TestShardResilience:
    def test_shard_crash_resubmits_and_merges_identically(self, tmp_path):
        program = by_name("SB").program
        impossible = Result(
            reads=((7,), (7,)),
            final_memory=tuple(
                (loc, 7) for loc in sorted(program.initial_memory)
            ),
        )
        token = str(tmp_path / "crash-token")
        stats = parallel.ShardStats()
        verdict = parallel.parallel_is_sc_result(
            program,
            [tuple(v) for v in impossible.reads],
            tuple(sorted(impossible.final_memory)),
            2_000_000,
            2,
            failpoints=(Failpoint("shard", "crash", token),),
            shard_stats=stats,
        )
        assert verdict is False  # bit-identical to serial
        assert os.path.exists(token)  # the failpoint really fired
        assert stats.resubmitted >= 1

    def test_shard_crash_dpor_results_identical(self, tmp_path):
        program = _generated(3)
        serial = sc_results_dpor(program)
        token = str(tmp_path / "crash-token")
        stats = parallel.ShardStats()
        sharded = parallel.parallel_sc_results_dpor(
            program,
            ExplorationConfig(),
            2,
            failpoints=(Failpoint("shard", "crash", token),),
            shard_stats=stats,
        )
        assert sharded == serial
        assert os.path.exists(token)
        assert stats.resubmitted >= 1

    def test_keyboard_interrupt_reaps_workers(self, tmp_path):
        program = _generated(0)
        token = str(tmp_path / "interrupt-token")
        with pytest.raises(KeyboardInterrupt):
            parallel.parallel_explore(
                program,
                ExplorationConfig(collect_executions=False),
                2,
                failpoints=(
                    Failpoint("coordinator", "interrupt", token),
                ),
            )
        assert os.path.exists(token)
        # Ctrl-C hygiene: the coordinator's finally tears the pool down
        # before propagating, so no orphan shard workers survive.
        for child in multiprocessing.active_children():
            child.join(timeout=5)
        assert not multiprocessing.active_children()


# ----------------------------------------------------------------------
# Engine integration: sharded judges and balanced chunks
# ----------------------------------------------------------------------


class TestEngineIntegration:
    def test_balanced_chunks_no_straggler(self):
        # 251 seeds at 32 chunks used to leave a 3-seed tail; balanced
        # splitting keeps every chunk within one seed of its siblings
        # and preserves concatenation order (the fold contract).
        seeds = list(range(251))
        chunks = _balanced_chunks(seeds, 8)
        sizes = [len(chunk) for chunk in chunks]
        assert len(chunks) == 32
        assert max(sizes) - min(sizes) <= 1
        assert [seed for chunk in chunks for seed in chunk] == seeds

    def test_balanced_chunks_edge_cases(self):
        assert _balanced_chunks([1], 8) == [(1,)]
        assert _balanced_chunks(list(range(8)), 8) == [tuple(range(8))]
        chunks = _balanced_chunks(list(range(9)), 8)
        assert [len(c) for c in chunks] == [5, 4]

    def test_seed_chunks_balanced(self):
        engine = VerificationEngine(jobs=8)
        chunks = engine._seed_chunks(list(range(251)))
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1
        assert [s for chunk in chunks for s in chunk] == list(range(251))

    @pool_available
    def test_contract_sweep_with_explore_jobs_identical(self):
        from repro.hw import POLICY_FACTORIES

        program = by_name("MP+sync").program
        factory = POLICY_FACTORIES["adve-hill"]
        serial = VerificationEngine(jobs=1).contract_sweep(
            program, factory, seeds=range(6)
        )
        engine = VerificationEngine(jobs=1, explore_jobs=2)
        sharded = engine.contract_sweep(program, factory, seeds=range(6))
        assert serial == sharded
        assert engine.shard_stats.explorations >= 1
        snapshot = engine.metrics_snapshot().as_dict()
        assert snapshot["counters"]["engine.explore.shards"] >= 1
