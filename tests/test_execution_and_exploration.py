"""Unit tests for Execution/Result helpers and exploration metadata."""

import pytest

from repro.core.execution import Execution, Result, final_memory_from_dict
from repro.core.sc import ExplorationConfig, explore, sc_results
from repro.core.types import Condition, OpKind
from repro.machine.dsl import ThreadBuilder, build_program

from helpers import execution_from_specs, store_buffer_program

R, W = OpKind.DATA_READ, OpKind.DATA_WRITE


class TestResult:
    def test_build_normalizes(self):
        result = Result.build([[1, 2], []], {"b": 2, "a": 1})
        assert result.reads == ((1, 2), ())
        assert result.final_memory == (("a", 1), ("b", 2))

    def test_equality_and_hash(self):
        a = Result.build([[1]], {"x": 1})
        b = Result.build([[1]], {"x": 1})
        assert a == b and hash(a) == hash(b)
        assert a != Result.build([[2]], {"x": 1})

    def test_str_mentions_reads_and_memory(self):
        text = str(Result.build([[7]], {"x": 7}))
        assert "7" in text and "x=7" in text

    def test_final_memory_from_dict_sorted(self):
        assert final_memory_from_dict({"b": 1, "a": 0}) == (("a", 0), ("b", 1))


class TestExecutionAccessors:
    def _execution(self):
        return execution_from_specs(
            [
                (1, W, "x", None, 5),
                (0, R, "x", 5, None),
                (0, W, "y", None, 2),
            ],
            num_procs=2,
            final_memory={"x": 5, "y": 2},
        )

    def test_by_program_order_groups_by_processor(self):
        ordered = self._execution().by_program_order()
        assert [op.proc for op in ordered] == [0, 0, 1]
        assert [op.po_index for op in ordered] == [0, 1, 0]

    def test_ops_of(self):
        execution = self._execution()
        assert len(execution.ops_of(0)) == 2
        assert len(execution.ops_of(1)) == 1

    def test_writes_to(self):
        execution = self._execution()
        assert [op.proc for op in execution.writes_to("x")] == [1]
        assert execution.writes_to("nope") == []

    def test_result_reads_follow_program_order(self):
        result = self._execution().result()
        assert result.reads == ((5,), ())

    def test_len(self):
        assert len(self._execution()) == 3


class TestExplorationMetadata:
    def test_states_visited_counted(self):
        exploration = explore(store_buffer_program())
        assert exploration.complete
        assert exploration.states_visited > 0
        assert exploration.result_set == sc_results(store_buffer_program())

    def test_dedup_reduces_executions(self):
        program = store_buffer_program()
        deduped = explore(program, ExplorationConfig(dedup=True))
        full = explore(program, ExplorationConfig(dedup=False))
        assert len(deduped.executions) <= len(full.executions)
        assert {e.result() for e in deduped.executions} == {
            e.result() for e in full.executions
        }

    def test_branchy_program_explores_both_arms(self):
        p0 = (
            ThreadBuilder()
            .load("r", "x")
            .branch_if(Condition.EQ, "r", 0, "zero")
            .store("out", 2)
            .jump("end")
            .label("zero")
            .store("out", 1)
            .label("end")
        )
        p1 = ThreadBuilder().store("x", 1)
        program = build_program([p0, p1], name="branchy")
        outs = {r.memory_value("out") for r in sc_results(program)}
        assert outs == {1, 2}
