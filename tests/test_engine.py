"""Tests for the parallel verification engine and the sweep-layer fixes.

The engine's whole value rests on one property -- parallel output is
bit-for-bit identical to the serial reference -- so most tests here are
equality assertions between the two paths, including reruns that are
served from the verdict caches.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import AdveHillPolicy, Definition1Policy, RelaxedPolicy, SCPolicy
from repro.litmus.catalog import by_name, message_passing_sync
from repro.litmus.harness import run_litmus_on_hardware
from repro.sim.system import SystemConfig
from repro.verify import (
    CacheIntegrityError,
    SCVerdictCache,
    VerificationEngine,
    contract_sweep,
    definition2_sweep,
    fuzz,
    program_fingerprint,
)

from helpers import message_passing_program, store_buffer_program


PROGRAMS = lambda: [message_passing_program(sync=True), store_buffer_program()]
FACTORIES = {"adve-hill": AdveHillPolicy, "definition1": Definition1Policy}


class TestSeedsMaterialization:
    """Regression: generator-typed ``seeds`` used to record seeds_run=0."""

    def test_contract_sweep_accepts_generator_seeds(self):
        report = contract_sweep(
            message_passing_program(sync=True),
            AdveHillPolicy,
            seeds=(s for s in range(6)),
        )
        assert report.seeds_run == 6
        assert report.mean_cycles > 0

    def test_litmus_harness_accepts_generator_seeds(self):
        report = run_litmus_on_hardware(
            message_passing_sync(),
            AdveHillPolicy,
            SystemConfig(),
            seeds=(s for s in range(5)),
        )
        assert report.seeds_run == 5
        assert report.results

    def test_engine_accepts_generator_seeds(self):
        report = VerificationEngine(jobs=1).contract_sweep(
            message_passing_program(sync=True),
            AdveHillPolicy,
            seeds=(s for s in range(4)),
        )
        assert report.seeds_run == 4


class TestPolicyNameCapture:
    """The sweep must not instantiate a throwaway policy just for .name."""

    def test_factory_called_once_per_seed(self):
        calls = []

        def factory():
            calls.append(1)
            return AdveHillPolicy()

        report = contract_sweep(
            message_passing_program(sync=True), factory, seeds=range(5)
        )
        assert report.policy_name == AdveHillPolicy().name
        assert len(calls) == 5

    def test_empty_seeds_still_names_the_policy(self):
        report = contract_sweep(
            message_passing_program(sync=True), AdveHillPolicy, seeds=[]
        )
        assert report.policy_name == AdveHillPolicy().name
        assert report.seeds_run == 0
        assert report.mean_cycles == 0.0


class TestConditionPlumbing:
    """definition2_sweep must forward check_51_conditions and record
    condition_violations in its rows."""

    def test_rows_carry_condition_violations(self):
        evidence = definition2_sweep(
            [message_passing_program(sync=True)],
            {"adve-hill": AdveHillPolicy},
            seeds=range(5),
            exhaustive_drf0=True,
            check_51_conditions=True,
        )
        assert all("condition_violations" in row for row in evidence.rows)
        assert evidence.rows[0]["condition_violations"] == []

    def test_violations_surface_for_broken_hardware(self):
        from repro.machine.dsl import ThreadBuilder, build_program

        # The strawman generates past uncommitted syncs (condition 4); this
        # shape provokes it within a few seeds.
        program = build_program(
            [
                ThreadBuilder().unset("s").store("x", 1),
                ThreadBuilder().load("r", "x"),
            ],
            initial_memory={"s": 1},
            name="sync-then-write",
        )
        evidence = definition2_sweep(
            [program],
            {"relaxed": RelaxedPolicy},
            seeds=range(20),
            exhaustive_drf0=True,
            check_51_conditions=True,
        )
        assert evidence.rows[0]["condition_violations"]


class TestParallelMatchesSerial:
    """The acceptance property: engine output == serial output, always."""

    def test_definition2_sweep_identical(self):
        serial = definition2_sweep(
            PROGRAMS(), FACTORIES, seeds=range(8), exhaustive_drf0=True,
            check_51_conditions=True,
        )
        engine = VerificationEngine(jobs=2)
        parallel = engine.definition2_sweep(
            PROGRAMS(), FACTORIES, seeds=range(8), exhaustive_drf0=True,
            check_51_conditions=True,
        )
        assert serial.rows == parallel.rows

    def test_rerun_from_warm_caches_identical(self):
        engine = VerificationEngine(jobs=2)
        first = engine.definition2_sweep(
            PROGRAMS(), FACTORIES, seeds=range(8), exhaustive_drf0=True
        )
        hits_before = engine.sc_cache.stats.hits
        second = engine.definition2_sweep(
            PROGRAMS(), FACTORIES, seeds=range(8), exhaustive_drf0=True
        )
        assert first.rows == second.rows
        # The rerun must be served from the memo, not re-judged.
        assert engine.sc_cache.stats.hits > hits_before
        assert engine.drf0_cache.stats.hits >= len(PROGRAMS())

    def test_contract_sweep_identical_including_violations(self):
        serial = contract_sweep(
            store_buffer_program(), RelaxedPolicy, seeds=range(30)
        )
        parallel = VerificationEngine(jobs=2).contract_sweep(
            store_buffer_program(), RelaxedPolicy, seeds=range(30)
        )
        assert serial == parallel
        assert not parallel.appears_sc  # the strawman really is broken

    def test_fuzz_identical(self):
        serial = fuzz(range(3))
        parallel = VerificationEngine(jobs=2).fuzz(range(3))
        assert serial.programs_run == parallel.programs_run
        assert serial.hardware_runs == parallel.hardware_runs
        assert serial.failures == parallel.failures

    def test_jobs_zero_means_cpu_count(self):
        engine = VerificationEngine(jobs=0)
        assert engine.jobs >= 1


#: Shared across property examples so later examples exercise the
#: cache-hit path too (same program, overlapping seed sets).
_PROPERTY_ENGINE = VerificationEngine(jobs=2)


@settings(max_examples=8, deadline=None)
@given(seeds=st.lists(st.integers(min_value=0, max_value=40), max_size=6))
def test_property_parallel_equals_serial_for_any_seed_set(seeds):
    """For arbitrary seed sets (empty, duplicated, unordered alike), the
    parallel engine's report equals the serial reference exactly."""
    program = message_passing_program(sync=True)
    serial = contract_sweep(
        program, AdveHillPolicy, seeds=seeds, check_51_conditions=True
    )
    parallel = _PROPERTY_ENGINE.contract_sweep(
        program, AdveHillPolicy, seeds=seeds, check_51_conditions=True
    )
    assert serial == parallel


class TestVerdictCacheIntegrity:
    """A poisoned memo entry must be detected, never silently served."""

    def _warm_cache(self):
        cache = SCVerdictCache()
        engine = VerificationEngine(jobs=1, sc_cache=cache)
        engine.contract_sweep(
            message_passing_program(sync=True), AdveHillPolicy, seeds=range(6)
        )
        assert len(cache) > 0
        return cache

    def test_tampered_entry_raises_on_lookup(self):
        cache = self._warm_cache()
        key = next(iter(cache._entries))
        verdict, checksum = cache._entries[key]
        cache._entries[key] = (not verdict, checksum)  # poison in place
        fingerprint, result = key
        program = cache._programs[fingerprint]
        with pytest.raises(CacheIntegrityError):
            cache.lookup(program, result)

    def test_consistently_poisoned_entry_caught_by_audit(self):
        cache = self._warm_cache()
        assert cache.audit() == []
        key = next(iter(cache._entries))
        fingerprint, result = key
        program = cache._programs[fingerprint]
        verdict, _ = cache._entries[key]
        # Rewrite the entry wholesale -- wrong verdict, *valid* checksum --
        # as a compromised worker would: lookup cannot see this...
        cache.store(program, result, not verdict)
        assert cache.lookup(program, result) == (not verdict)
        # ...but the oracle re-derivation does.
        assert key in cache.audit()

    def test_fingerprint_ignores_name_but_not_code(self):
        a = message_passing_program(sync=True)
        b = message_passing_program(sync=True)
        assert program_fingerprint(a) == program_fingerprint(b)
        assert program_fingerprint(a) != program_fingerprint(
            store_buffer_program()
        )


class TestCliIntegration:
    def test_sweep_command_with_jobs(self, capsys):
        from repro.cli import main

        assert (
            main(["sweep", "MP+sync", "--policy", "adve-hill",
                  "--policy", "sc", "--seeds", "6", "--jobs", "2"])
            == 0
        )
        out = capsys.readouterr().out
        assert "Definition-2 contract: holds" in out
        assert "adve-hill" in out and "sc" in out

    def test_fuzz_command_with_jobs(self, capsys):
        from repro.cli import main

        assert main(["fuzz", "--programs", "2", "--jobs", "2"]) == 0
        assert "0 failures" in capsys.readouterr().out
