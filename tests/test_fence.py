"""Tests for the RP3-style Fence instruction (Section 2.1's RP3 option)."""

import pytest

from repro.core.sc import sc_results
from repro.core.types import OpKind
from repro.hw import RelaxedPolicy, SCPolicy
from repro.litmus.catalog import by_name, store_buffer_fenced
from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.interpreter import FenceRequest, ThreadState, run_to_memory_op
from repro.sim.system import FIGURE1_CONFIGS, SystemConfig, run_on_hardware


class TestInterpreter:
    def test_fence_surfaces_as_request(self):
        code = ThreadBuilder().fence().store("x", 1).build()
        state = ThreadState()
        pending, _ = run_to_memory_op(code, state)
        assert isinstance(pending, FenceRequest)

    def test_fence_skipped_on_idealized_architecture(self):
        code = ThreadBuilder().fence().store("x", 1).build()
        state = ThreadState()
        pending, _ = run_to_memory_op(code, state, skip_delays=True)
        assert pending.location == "x"

    def test_sc_results_unchanged_by_fences(self):
        """Fences are semantic no-ops on the idealized architecture."""
        plain = by_name("SB").program
        fenced = store_buffer_fenced().program
        assert sc_results(plain) == sc_results(fenced)


class TestHardware:
    @pytest.mark.parametrize("config_name", sorted(FIGURE1_CONFIGS))
    def test_fences_kill_the_figure1_violation(self, config_name):
        """The RP3 option: relaxed hardware plus explicit fences never
        shows the store-buffer outcome, on any configuration."""
        test = store_buffer_fenced()
        config = FIGURE1_CONFIGS[config_name]
        for seed in range(30):
            run = run_on_hardware(
                test.program, RelaxedPolicy(), config.with_seed(seed)
            )
            assert not test.outcome(run.result), (config_name, seed)

    def test_unfenced_control_still_violates(self):
        """Sanity: the same hardware without the fences does violate."""
        test = by_name("SB")
        observed = any(
            test.outcome(
                run_on_hardware(
                    test.program, RelaxedPolicy(), SystemConfig(seed=s)
                ).result
            )
            for s in range(40)
        )
        assert observed

    def test_fence_stall_appears_in_stats(self):
        program = store_buffer_fenced().program
        run = run_on_hardware(program, RelaxedPolicy(), SystemConfig(seed=1))
        # the fence wait is charged as a gate stall on at least one processor
        assert any(s.gate_stall_cycles > 0 for s in run.proc_stats)

    def test_fence_with_no_outstanding_accesses_is_cheap(self):
        program = build_program(
            [ThreadBuilder().fence().store("x", 1)], name="leading-fence"
        )
        run = run_on_hardware(program, SCPolicy(), SystemConfig(seed=0))
        assert run.result.memory_value("x") == 1

    def test_one_sided_fence_does_not_forbid_outcome(self):
        """Only one processor fenced: the other's buffered write can still
        be overtaken.  The window needs a long write-buffer drain (pinned
        seed found by sweep; deterministic given the config)."""
        p1 = ThreadBuilder().store("x", 1).fence().load("r1", "y")
        p2 = ThreadBuilder().store("y", 1).load("r2", "x")
        program = build_program([p1, p2], name="SB+half-fence")
        config = SystemConfig(
            seed=69, caches=False, net_latency=2, net_jitter=25,
            wb_drain_delay=40,
        )
        result = run_on_hardware(program, RelaxedPolicy(), config).result
        assert result.reads[0][0] == 0 and result.reads[1][0] == 0


class TestCatalogEntry:
    def test_flags_verified(self):
        from repro.litmus import verify_catalog_expectations

        assert verify_catalog_expectations([store_buffer_fenced()]) == []

    def test_not_drf0(self):
        """Fences are not synchronization operations: DRF0 cannot express
        them, so the fenced SB is still (formally) racy."""
        assert not store_buffer_fenced().drf0
