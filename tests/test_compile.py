"""Unit tests for the compiled execution engine (:mod:`repro.core.compile`).

The differential explorer-level tests live in
``test_explorer_equivalence.py``; these pin the engine's own mechanics --
step/undo round-trips, packed-key interning, the reset contract, the
weakref compile cache, and the interpreted-engine fallback paths.
"""

import gc
import random

import pytest

from repro.core.compile import (
    CompiledEngine,
    CompiledRequest,
    _COMPILED,
    compiled_enabled,
    compiled_program,
    interpreted_engine,
    make_engine,
    use_compiled,
)
from repro.core.engine_state import EngineState
from repro.litmus.catalog import by_name
from repro.machine.generator import random_program


def _random_walk(engine, seed, steps=None):
    """Step the engine along a seeded random schedule; returns step count."""
    rng = random.Random(seed)
    taken = 0
    while steps is None or taken < steps:
        runnable = engine.runnable()
        if not runnable:
            break
        engine.step(rng.choice(runnable))
        taken += 1
    return taken


def _snapshot(engine):
    """Everything observable about the engine's current configuration."""
    return (
        list(engine.S),
        list(engine._pending),
        tuple(engine.reads),
        list(engine.po_counts),
        list(engine.trace),
        engine.depth,
        engine.config_key(),
        engine.reads_key(),
        engine.read_counts(),
        engine.final_memory(),
    )


# ---------------------------------------------------------------------------
# Step/undo mechanics
# ---------------------------------------------------------------------------


def test_step_undo_round_trip_restores_everything():
    """Undoing all steps restores the exact initial configuration."""
    for seed in range(20):
        program = random_program(seed)
        engine = make_engine(program)
        assert isinstance(engine, CompiledEngine)
        before = _snapshot(engine)
        taken = _random_walk(engine, seed, steps=7)
        for _ in range(taken):
            engine.undo()
        after = _snapshot(engine)
        assert before == after, f"seed {seed}"
        # Keys are hash-consed: the restored key is the *same* object.
        assert before[6] is after[6]


def test_interleaved_step_undo_is_lifo_consistent():
    """Partial undos mid-walk land on previously seen configurations."""
    program = by_name("IRIW").program
    engine = make_engine(program)
    rng = random.Random(7)
    seen = [engine.config_key()]
    for _ in range(3):
        for _ in range(4):
            runnable = engine.runnable()
            if not runnable:
                break
            engine.step(rng.choice(runnable))
            seen.append(engine.config_key())
        engine.undo()
        seen.pop()
        assert engine.config_key() == seen[-1]


def test_runnable_tracks_halting_and_revival():
    """A halting step drops the proc from runnable; undo revives it."""
    program = by_name("SB").program  # 2 threads x 2 ops
    engine = make_engine(program)
    assert engine.runnable() == [0, 1]
    engine.step(0)
    engine.step(0)  # thread 0 halts
    assert engine.runnable() == [1]
    engine.undo()
    assert engine.runnable() == [0, 1]


# ---------------------------------------------------------------------------
# Packed keys
# ---------------------------------------------------------------------------


def test_config_keys_are_flat_interned_int_tuples():
    program = by_name("MP").program
    engine = make_engine(program)
    key = engine.config_key()
    assert isinstance(key, tuple)
    assert all(isinstance(v, int) for v in key)
    # Cached until invalidated, and hash-consed across re-derivations.
    assert engine.config_key() is key
    engine.step(0)
    assert engine.config_key() != key
    engine.undo()
    assert engine.config_key() is key


def test_distinct_configurations_get_distinct_keys():
    """The packed key is injective over configurations reached in a walk."""
    for seed in range(10):
        program = random_program(seed)
        engine = make_engine(program)
        if not isinstance(engine, CompiledEngine):
            continue
        rng = random.Random(seed)
        seen = {}
        for _ in range(50):
            runnable = engine.runnable()
            if not runnable:
                break
            key = engine.config_key()
            state = (tuple(engine.S), tuple(engine._pending))
            if key in seen:
                assert seen[key] == state, f"seed {seed}: key collision"
            seen[key] = state
            engine.step(rng.choice(runnable))


# ---------------------------------------------------------------------------
# reset()
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("interpreted", [False, True], ids=["compiled", "interpreted"])
def test_reset_equivalent_to_fresh_engine(interpreted):
    """After reset, the engine behaves exactly like a new one and has
    dropped its memo dicts (the unbounded-retention satellite)."""
    program = by_name("WRC").program
    if interpreted:
        with interpreted_engine():
            engine = make_engine(program)
        assert isinstance(engine, EngineState)
    else:
        engine = make_engine(program)
        assert isinstance(engine, CompiledEngine)
    fresh = _walk_results(engine, seed=3)
    assert len(engine._op_cache) > 0
    engine.reset()
    assert len(engine._op_cache) == 0
    assert engine.transitions == 0
    assert engine.depth == 0
    assert engine.trace == []
    again = _walk_results(engine, seed=3)
    assert fresh == again


def _walk_results(engine, seed):
    _random_walk(engine, seed)
    out = (engine.result(), tuple(engine.trace))
    while engine.depth:
        engine.undo()
    return out


def test_reset_clears_interned_keys():
    program = by_name("SB").program
    engine = make_engine(program)
    _random_walk(engine, 1, steps=3)
    engine.config_key()
    assert len(engine._interned) > 0
    engine.reset()
    assert len(engine._interned) <= 1  # at most the freshly cached initial key


# ---------------------------------------------------------------------------
# record_trace=False
# ---------------------------------------------------------------------------


def test_record_trace_false_skips_operations_and_refuses_execution():
    program = by_name("SB").program
    engine = make_engine(program, record_trace=False)
    op = engine.step(0)
    assert op is None
    assert engine.trace == []
    with pytest.raises(RuntimeError):
        engine.execution()
    engine.step(1)
    engine.undo()
    engine.undo()
    assert engine.depth == 0


def test_record_trace_false_still_yields_results():
    program = by_name("SB").program
    engine = make_engine(program, record_trace=False)
    _random_walk(engine, 0)
    assert not engine.runnable()
    result = engine.result()
    assert len(result.reads) == program.num_procs


# ---------------------------------------------------------------------------
# CompiledRequest surface
# ---------------------------------------------------------------------------


def test_compiled_request_exposes_no_write_value():
    """Write values can depend on registers; a static one would be stale.
    Reading it must fail loudly, not return garbage."""
    engine = make_engine(by_name("SB").program)
    request = engine.pending(0)
    assert isinstance(request, CompiledRequest)
    assert request.kind is not None and request.location is not None
    with pytest.raises(AttributeError):
        request.write_value


# ---------------------------------------------------------------------------
# Factory, fallback, and cache
# ---------------------------------------------------------------------------


def test_make_engine_falls_back_when_disabled():
    program = by_name("SB").program
    assert isinstance(make_engine(program), CompiledEngine)
    with interpreted_engine():
        assert not compiled_enabled()
        assert isinstance(make_engine(program), EngineState)
    assert compiled_enabled()
    assert isinstance(make_engine(program), CompiledEngine)


def test_interpreted_engine_restores_flag_on_exception():
    with pytest.raises(ValueError):
        with interpreted_engine():
            raise ValueError("boom")
    assert compiled_enabled()


def test_use_compiled_toggle():
    program = by_name("SB").program
    try:
        use_compiled(False)
        assert isinstance(make_engine(program), EngineState)
    finally:
        use_compiled(True)
    assert isinstance(make_engine(program), CompiledEngine)


def test_compiled_program_cached_per_program_object():
    program = by_name("MP").program
    cp1 = compiled_program(program)
    cp2 = compiled_program(program)
    assert cp1 is cp2
    assert make_engine(program).cp is cp1


def test_compile_cache_evicted_when_program_collected():
    program = random_program(123)
    key = id(program)
    compiled_program(program)
    assert key in _COMPILED
    del program
    gc.collect()
    assert key not in _COMPILED


def test_uncompilable_program_falls_back_to_interpreter():
    """An unknown instruction makes compilation fail once, then every
    make_engine call returns the interpreted engine for that program."""

    class Weird:  # not part of the ISA
        pass

    program = by_name("SB").program
    # Splice an unknown instruction into a copy of the first thread.
    import dataclasses

    thread0 = program.threads[0]
    mutated = dataclasses.replace(
        program,
        threads=(
            dataclasses.replace(
                thread0, instructions=thread0.instructions + (Weird(),)
            ),
        )
        + program.threads[1:],
    )
    assert compiled_program(mutated) is None
    engine = make_engine(mutated)
    assert isinstance(engine, EngineState)
    # The failure is remembered: still None on the second probe.
    assert compiled_program(mutated) is None
