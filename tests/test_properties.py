"""Property-based tests (hypothesis) over randomly generated programs.

The generators build small straight-line programs over a handful of
locations; the properties tie the library's independent components to each
other:

* the axiomatic SC model and the operational interleaving enumerator agree
  on every program;
* the vector-clock race detector agrees with the transitive-closure oracle
  on every execution and both synchronization models;
* sequentially consistent hardware appears sequentially consistent to
  *every* program (not just DRF0 ones);
* happens-before is a strict partial order containing po and so;
* hardware runs are deterministic in their seed.
"""

from hypothesis import given, settings, strategies as st

from repro.axiomatic import SCModel, allowed_results
from repro.core.contract import is_sc_result
from repro.core.drf0 import races_in_execution, races_in_execution_vc
from repro.core.models import DRF0_MODEL, DRF1_MODEL
from repro.core.relations import happens_before, program_order, synchronization_order
from repro.core.sc import random_sc_execution, sc_results
from repro.hw import AdveHillPolicy, Definition1Policy, SCPolicy
from repro.machine.dsl import ThreadBuilder, build_program
from repro.sim.system import SystemConfig, run_on_hardware

LOCATIONS = ["x", "y", "z"]
SYNC_LOCATIONS = ["s", "t"]


@st.composite
def straight_line_instruction(draw, thread: ThreadBuilder, index: int):
    """Append one random straight-line instruction to ``thread``."""
    choice = draw(st.integers(0, 5))
    loc = draw(st.sampled_from(LOCATIONS))
    sloc = draw(st.sampled_from(SYNC_LOCATIONS))
    value = draw(st.integers(0, 3))
    if choice == 0:
        thread.load(f"r{index}", loc)
    elif choice == 1:
        thread.store(loc, value)
    elif choice == 2:
        thread.sync_load(f"r{index}", sloc)
    elif choice == 3:
        thread.sync_store(sloc, value)
    elif choice == 4:
        thread.test_and_set(f"r{index}", sloc, set_value=value)
    else:
        thread.unset(sloc)
    return thread


@st.composite
def small_programs(draw, max_threads: int = 3, max_ops: int = 4):
    """A random straight-line program."""
    num_threads = draw(st.integers(1, max_threads))
    threads = []
    for _ in range(num_threads):
        t = ThreadBuilder()
        for index in range(draw(st.integers(1, max_ops))):
            draw(straight_line_instruction(t, index))
        threads.append(t)
    return build_program(threads, name="random")


@settings(max_examples=40, deadline=None)
@given(small_programs(max_threads=2, max_ops=3))
def test_axiomatic_sc_matches_operational_sc(program):
    """Two independent definitions of SC agree on every program."""
    assert allowed_results(program, SCModel()) == sc_results(program)


@settings(max_examples=60, deadline=None)
@given(small_programs(), st.integers(0, 1000))
def test_vector_clock_detector_matches_oracle(program, seed):
    """Soundness + per-(location, processor pair) completeness of the fast
    detector: it may subsume an earlier same-processor access under the
    latest one, but must agree with the oracle on which location/processor
    pairs race (hence on race existence)."""
    execution = random_sc_execution(program, seed)
    for model in (DRF0_MODEL, DRF1_MODEL):
        slow = races_in_execution(execution, model)
        fast = races_in_execution_vc(execution, model)
        slow_pairs = {(r.first.uid, r.second.uid) for r in slow}
        fast_pairs = {(r.first.uid, r.second.uid) for r in fast}
        assert fast_pairs <= slow_pairs  # soundness
        def sites(races):
            return {
                (r.first.location, frozenset((r.first.proc, r.second.proc)))
                for r in races
            }
        assert sites(slow) == sites(fast)  # site-level completeness


@settings(max_examples=25, deadline=None)
@given(small_programs(max_threads=2, max_ops=3), st.integers(0, 100))
def test_sc_hardware_appears_sc_to_all_programs(program, seed):
    """SC hardware owes sequential consistency to racy programs too."""
    run = run_on_hardware(program, SCPolicy(), SystemConfig(seed=seed))
    assert is_sc_result(program, run.result)


@settings(max_examples=20, deadline=None)
@given(small_programs(max_threads=2, max_ops=3), st.integers(0, 100))
def test_hardware_deterministic_in_seed(program, seed):
    a = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=seed))
    b = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=seed))
    assert a.result == b.result and a.cycles == b.cycles


@settings(max_examples=40, deadline=None)
@given(small_programs(), st.integers(0, 1000))
def test_happens_before_is_strict_partial_order(program, seed):
    execution = random_sc_execution(program, seed)
    hb = happens_before(execution)
    ops = execution.ops
    for op in ops:
        assert not hb.has_edge(op, op)
    for a in ops:
        for b in ops:
            if hb.ordered(a, b):
                assert not hb.ordered(b, a)
    po = program_order(execution)
    so = synchronization_order(execution)
    for a, b in po.edges():
        assert hb.ordered(a, b)
    for a, b in so.edges():
        assert hb.ordered(a, b)


@settings(max_examples=40, deadline=None)
@given(small_programs(), st.integers(0, 1000))
def test_idealized_execution_result_is_member(program, seed):
    """Every random SC execution's result passes the membership oracle."""
    execution = random_sc_execution(program, seed)
    assert is_sc_result(program, execution.result())


@settings(max_examples=40, deadline=None)
@given(small_programs(), st.integers(0, 1000))
def test_completion_order_is_a_legal_sc_witness(program, seed):
    """Reads in an idealized execution return the latest preceding write."""
    execution = random_sc_execution(program, seed)
    memory = dict(program.initial_memory)
    for op in execution.ops:
        if op.has_read:
            assert op.value_read == memory[op.location]
        if op.has_write:
            memory[op.location] = op.value_written
    assert dict(execution.final_memory) == memory


@settings(max_examples=15, deadline=None)
@given(small_programs(max_threads=2, max_ops=3), st.integers(0, 50))
def test_weakly_ordered_hardware_commits_all_accesses(program, seed):
    """Liveness: every generated access commits; every thread halts."""
    for factory in (Definition1Policy, AdveHillPolicy):
        run = run_on_hardware(program, factory(), SystemConfig(seed=seed))
        for per_proc in run.raw_accesses:
            assert all(a.committed for a in per_proc)
            writes = [a for a in per_proc if a.has_write]
            assert all(a.globally_performed for a in writes)
