"""Differential tests: the in-place do/undo engine vs the frozen legacy
snapshot explorers (:mod:`repro.core._legacy`).

The E10 refactor replaced the copy-everything inner loops of the naive
enumerator, the DPOR explorer, and the DRF0 checker with one shared
engine.  These tests pin the refactor's contract: **bit-identical
observable answers** -- SC result sets, DRF0 race verdicts, and
``complete`` flags -- across the full litmus catalog and hundreds of
generated programs, with sleep sets both on and off, including the
cap-hit paths under ``allow_incomplete``.
"""

import pytest

from repro.core._legacy import (
    legacy_check_program,
    legacy_check_program_dpor,
    legacy_explore,
    legacy_explore_dpor,
    legacy_is_sc_result,
)
from repro.core.compile import interpreted_engine, make_engine
from repro.core.contract import is_sc_result
from repro.core.dpor import (
    _StackEntry,
    check_program_dpor,
    explore_dpor,
    iter_dpor_executions,
    sc_results_dpor,
)
from repro.core.drf0 import check_program
from repro.core.engine_state import ExplorerStats
from repro.core.sc import (
    ExplorationConfig,
    ExplorationIncomplete,
    explore,
    sc_executions,
    sc_results,
)
from repro.litmus.catalog import all_tests, by_name, iriw
from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.generator import random_program
from repro.core.types import Condition

CATALOG = all_tests()
STRAIGHT_TESTS = [t for t in CATALOG if t.program.is_straight_line()]

NO_SLEEP = ExplorationConfig(sleep_sets=False)


# ---------------------------------------------------------------------------
# Litmus catalog
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("test", CATALOG, ids=lambda t: t.name)
def test_catalog_naive_matches_legacy(test):
    """Same result sets, execution counts, and complete flags, per test."""
    for cfg in (ExplorationConfig(dedup=True), ExplorationConfig(dedup=False)):
        new = explore(test.program, cfg)
        old = legacy_explore(test.program, cfg)
        assert new.results == old.results
        assert new.complete == old.complete
        assert len(new.executions) == len(old.executions)


@pytest.mark.parametrize("test", STRAIGHT_TESTS, ids=lambda t: t.name)
def test_catalog_dpor_matches_naive_both_sleep_modes(test):
    """DPOR (sleep sets on and off) and legacy DPOR agree with naive."""
    naive = sc_results(test.program)
    assert sc_results_dpor(test.program) == naive
    assert sc_results_dpor(test.program, NO_SLEEP) == naive
    assert {e.result() for e in legacy_explore_dpor(test.program)} == naive


@pytest.mark.parametrize("test", STRAIGHT_TESTS, ids=lambda t: t.name)
def test_catalog_drf0_verdicts_agree(test):
    """Every checker variant returns the catalog's recorded DRF0 verdict."""
    assert check_program(test.program).obeys == test.drf0
    assert legacy_check_program(test.program).obeys == test.drf0
    assert check_program_dpor(test.program).obeys == test.drf0
    assert check_program_dpor(test.program, config=NO_SLEEP).obeys == test.drf0
    assert legacy_check_program_dpor(test.program).obeys == test.drf0


@pytest.mark.parametrize("test", STRAIGHT_TESTS[:4], ids=lambda t: t.name)
def test_catalog_contract_membership_matches_legacy(test):
    """The guided SC-membership search agrees with its snapshot ancestor."""
    for result in sorted(sc_results(test.program), key=repr):
        assert is_sc_result(test.program, result)
        assert legacy_is_sc_result(test.program, result)


# ---------------------------------------------------------------------------
# Generated programs (>= 200 seeds, deterministic)
# ---------------------------------------------------------------------------


def test_generated_programs_all_explorers_agree():
    """One sweep over 200 seeded random programs, every explorer variant.

    Asserts, per program: equal SC result sets from the naive engine, the
    legacy enumerator, and DPOR with sleep sets on and off; equal
    ``complete`` flags; and equal DRF0 verdicts from all four checkers.
    """
    for seed in range(200):
        program = random_program(seed)
        cfg = ExplorationConfig(dedup=True)
        new = explore(program, cfg)
        old = legacy_explore(program, cfg)
        assert new.results == old.results, f"seed {seed}: result sets differ"
        assert new.complete == old.complete, f"seed {seed}: complete differs"
        naive = new.results
        assert sc_results_dpor(program) == naive, f"seed {seed}: dpor+sleep"
        assert sc_results_dpor(program, NO_SLEEP) == naive, (
            f"seed {seed}: dpor-sleep"
        )
        assert {e.result() for e in legacy_explore_dpor(program)} == naive, (
            f"seed {seed}: legacy dpor"
        )
        verdicts = {
            check_program(program).obeys,
            legacy_check_program(program).obeys,
            check_program_dpor(program).obeys,
            check_program_dpor(program, config=NO_SLEEP).obeys,
        }
        assert len(verdicts) == 1, f"seed {seed}: DRF0 verdicts disagree"


# ---------------------------------------------------------------------------
# Compiled vs interpreted engine (three-way with legacy)
# ---------------------------------------------------------------------------
#
# The compiled engine (specialized step closures + packed int state,
# :mod:`repro.core.compile`) is the default; ``interpreted_engine()``
# forces the original :class:`EngineState`.  The contract is *bit
# identity*: not just equal result sets but equal execution traces
# (operation for operation) and equal exploration counters, because the
# packed configuration keys must merge/cut exactly the same nodes the
# interpreted keys do.


def _explore_both_engines(program, cfg):
    compiled = explore(program, cfg)
    with interpreted_engine():
        interpreted = explore(program, cfg)
    return compiled, interpreted


def _assert_bit_identical(compiled, interpreted, label):
    assert compiled.results == interpreted.results, label
    assert compiled.complete == interpreted.complete, label
    assert compiled.executions == interpreted.executions, label
    assert compiled.stats.states == interpreted.stats.states, label
    assert compiled.stats.executions == interpreted.stats.executions, label
    assert compiled.stats.transitions == interpreted.stats.transitions, label
    assert compiled.stats.max_depth == interpreted.stats.max_depth, label


@pytest.mark.parametrize("test", CATALOG, ids=lambda t: t.name)
def test_catalog_compiled_engine_bit_identical(test):
    """Catalog: compiled == interpreted on traces, results, and counters."""
    for cfg in (ExplorationConfig(dedup=True), ExplorationConfig(dedup=False)):
        compiled, interpreted = _explore_both_engines(test.program, cfg)
        _assert_bit_identical(compiled, interpreted, test.name)


def test_generated_programs_compiled_engine_bit_identical():
    """200 seeded programs: compiled == interpreted, dedup on and off,
    plus equal DPOR execution lists and DRF0 verdicts/witnesses."""
    for seed in range(200):
        program = random_program(seed)
        for cfg in (
            ExplorationConfig(dedup=True),
            ExplorationConfig(dedup=False),
        ):
            compiled, interpreted = _explore_both_engines(program, cfg)
            _assert_bit_identical(compiled, interpreted, f"seed {seed}")
        dpor_compiled = explore_dpor(program)
        report_compiled = check_program(program)
        with interpreted_engine():
            dpor_interpreted = explore_dpor(program)
            report_interpreted = check_program(program)
        assert dpor_compiled == dpor_interpreted, f"seed {seed}: dpor traces"
        assert report_compiled.obeys == report_interpreted.obeys, f"seed {seed}"
        assert report_compiled.race == report_interpreted.race, f"seed {seed}"
        assert report_compiled.witness == report_interpreted.witness, (
            f"seed {seed}"
        )
        assert (
            report_compiled.executions_checked
            == report_interpreted.executions_checked
        ), f"seed {seed}"


def test_compiled_engine_cap_hits_bit_identical():
    """Cap-hit paths truncate at the same node on both engines."""
    program = iriw().program
    for cfg in (
        ExplorationConfig(dedup=False, max_executions=5, allow_incomplete=True),
        ExplorationConfig(dedup=False, max_ops=3, allow_incomplete=True),
        ExplorationConfig(dedup=True, max_states=10, allow_incomplete=True),
    ):
        compiled, interpreted = _explore_both_engines(program, cfg)
        _assert_bit_identical(compiled, interpreted, repr(cfg))


def test_compiled_engine_sleep_sets_off_bit_identical():
    """DPOR with sleep sets disabled matches across engines, cuts included."""
    program = iriw().program
    stats_c = ExplorerStats()
    execs_c = explore_dpor(program, NO_SLEEP, stats=stats_c)
    with interpreted_engine():
        stats_i = ExplorerStats()
        execs_i = explore_dpor(program, NO_SLEEP, stats=stats_i)
    assert execs_c == execs_i
    assert stats_c.states == stats_i.states
    assert stats_c.sleep_cuts == stats_i.sleep_cuts
    assert stats_c.transitions == stats_i.transitions


def test_compiled_engine_spin_loop_cycle_pruning_identical():
    """Packed keys cut livelock cycles at the same nodes as nested keys."""
    spin = build_program(
        [
            ThreadBuilder().label("s").test_and_set("r", "l").branch_if(
                Condition.NE, "r", 0, "s"
            ).store("x", 1),
            ThreadBuilder().load("r2", "x").sync_store("l", 0),
        ],
        initial_memory={"l": 1, "x": 0},
        name="spin-release",
    )
    cfg = ExplorationConfig(dedup=True)
    compiled, interpreted = _explore_both_engines(spin, cfg)
    _assert_bit_identical(compiled, interpreted, "spin-release")


def test_step_semantics_match_execute_atomically():
    """Differential: the engines' inlined memory semantics against the
    reference :func:`execute_atomically` on the same request stream.

    Both engines inline read/write application instead of calling the
    dict-based helper; this pins the three implementations to each other
    on every operation of a random-schedule walk over generated programs.
    """
    import random

    from repro.core.engine_state import execute_atomically
    from repro.machine.interpreter import MemRequest

    for engine_ctx in (None, interpreted_engine):
        for seed in range(40):
            program = random_program(seed)
            if engine_ctx is None:
                engine = make_engine(program)
            else:
                with engine_ctx():
                    engine = make_engine(program)
            memory = dict(program.initial_memory)
            rng = random.Random(seed)
            while True:
                runnable = engine.runnable()
                if not runnable:
                    break
                proc = rng.choice(runnable)
                request = engine.pending(proc)
                op = engine.step(proc)
                # The reference semantics, applied to a shadow memory;
                # the request is rebuilt from the executed op because the
                # compiled engine's pending requests carry no write value.
                ref_read, ref_written = execute_atomically(
                    memory,
                    MemRequest(
                        instr=request.instr,
                        kind=op.kind,
                        location=op.location,
                        write_value=(
                            op.value_written if op.kind.has_write else None
                        ),
                    ),
                )
                assert op.value_read == ref_read
                assert op.value_written == ref_written
            assert dict(engine.final_memory()) == memory


# ---------------------------------------------------------------------------
# Cap-hit paths
# ---------------------------------------------------------------------------


def test_execution_cap_allow_incomplete_matches_legacy():
    """Both sides truncate identically under a max_executions cap."""
    program = iriw().program
    full = sc_results(program)
    cfg = ExplorationConfig(
        dedup=False, max_executions=5, allow_incomplete=True
    )
    new = explore(program, cfg)
    old = legacy_explore(program, cfg)
    assert not new.complete and not old.complete
    assert len(new.executions) == len(old.executions) == 5
    # Same DFS order on both sides: identical truncated answer.
    assert new.results == old.results
    assert new.results <= full


def test_max_ops_cap_allow_incomplete_matches_legacy():
    """A depth cap with allow_incomplete returns partial, equal answers."""
    program = by_name("SB").program
    cfg = ExplorationConfig(dedup=False, max_ops=2, allow_incomplete=True)
    new = explore(program, cfg)
    old = legacy_explore(program, cfg)
    assert not new.complete and not old.complete
    assert new.results == old.results


def test_max_ops_cap_raises_without_allow_incomplete():
    program = by_name("SB").program
    cfg = ExplorationConfig(max_ops=2)
    with pytest.raises(ExplorationIncomplete):
        explore(program, cfg)
    with pytest.raises(ExplorationIncomplete):
        legacy_explore(program, cfg)


def test_dpor_cap_paths():
    """DPOR honours the caps the same way in both sleep modes."""
    spin = build_program(
        [
            ThreadBuilder().label("s").test_and_set("r", "l").branch_if(
                Condition.NE, "r", 0, "s"
            ),
            ThreadBuilder().test_and_set("r2", "l"),
        ],
        initial_memory={"l": 1},
        name="spinner",
    )
    for cfg in (
        ExplorationConfig(max_ops=50),
        ExplorationConfig(max_ops=50, sleep_sets=False),
    ):
        with pytest.raises(ExplorationIncomplete):
            explore_dpor(spin, cfg)
    partial = explore_dpor(
        by_name("SB").program,
        ExplorationConfig(max_ops=1, allow_incomplete=True),
    )
    assert partial == []


# ---------------------------------------------------------------------------
# Satellite regressions
# ---------------------------------------------------------------------------


def test_sc_results_does_not_mutate_caller_config():
    cfg = ExplorationConfig(dedup=False, collect_executions=True)
    sc_results(by_name("SB").program, cfg)
    assert cfg.dedup is False and cfg.collect_executions is True


def test_sc_executions_does_not_mutate_caller_config():
    cfg = ExplorationConfig(dedup=True, collect_executions=False)
    sc_executions(by_name("SB").program, cfg)
    assert cfg.dedup is True and cfg.collect_executions is False


def test_states_counted_without_dedup():
    """``stats['states']`` counts expanded nodes even with dedup off."""
    exploration = explore(by_name("SB").program, ExplorationConfig(dedup=False))
    assert exploration.states_visited > 0
    assert exploration.stats.states == exploration.states_visited
    assert exploration.stats.transitions > 0
    assert exploration.stats.max_depth == 4  # SB: 2 threads x 2 ops


def test_dpor_stack_entries_carry_no_snapshots():
    """The undo-log engine made per-node state copies dead; keep them gone."""
    import dataclasses

    fields = {f.name for f in dataclasses.fields(_StackEntry)}
    assert "threads" not in fields
    assert "memory" not in fields
    assert fields == {"proc", "op", "backtrack", "done"}


def test_sleep_sets_prune_and_report_cuts():
    """Sleep sets cut real branches on IRIW and the stats record it."""
    program = iriw().program
    with_sleep = ExplorerStats()
    without = ExplorerStats()
    on = explore_dpor(program, stats=with_sleep)
    off = explore_dpor(program, NO_SLEEP, stats=without)
    assert {e.result() for e in on} == {e.result() for e in off}
    assert with_sleep.sleep_cuts > 0
    assert with_sleep.transitions <= without.transitions


def test_streaming_consumption_stops_early():
    """Abandoning the DPOR generator leaves valid stats (no exhaustion)."""
    stats = ExplorerStats()
    gen = iter_dpor_executions(iriw().program, stats=stats)
    first = next(gen)
    gen.close()
    assert first.final_memory is not None
    assert stats.transitions > 0
    full = ExplorerStats()
    list(iter_dpor_executions(iriw().program, stats=full))
    assert stats.transitions < full.transitions
