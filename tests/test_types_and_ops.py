"""Unit tests for repro.core.types and repro.core.ops."""

import pytest

from repro.core.ops import Operation, conflicts, same_location_syncs
from repro.core.types import Condition, OpKind


def op(kind, loc="x", proc=0, read=None, written=None, uid=0, po=0):
    return Operation(uid, proc, po, kind, loc, read, written)


class TestOpKind:
    def test_sync_classification(self):
        assert OpKind.SYNC_READ.is_sync
        assert OpKind.SYNC_WRITE.is_sync
        assert OpKind.SYNC_RMW.is_sync
        assert not OpKind.DATA_READ.is_sync
        assert not OpKind.DATA_WRITE.is_sync

    def test_read_components(self):
        assert OpKind.DATA_READ.has_read
        assert OpKind.SYNC_READ.has_read
        assert OpKind.SYNC_RMW.has_read
        assert not OpKind.DATA_WRITE.has_read
        assert not OpKind.SYNC_WRITE.has_read

    def test_write_components(self):
        assert OpKind.DATA_WRITE.has_write
        assert OpKind.SYNC_WRITE.has_write
        assert OpKind.SYNC_RMW.has_write
        assert not OpKind.DATA_READ.has_write
        assert not OpKind.SYNC_READ.has_write

    def test_rmw_has_both_components(self):
        assert OpKind.SYNC_RMW.has_read and OpKind.SYNC_RMW.has_write


class TestCondition:
    @pytest.mark.parametrize(
        "cond,lhs,rhs,expected",
        [
            (Condition.EQ, 1, 1, True),
            (Condition.EQ, 1, 2, False),
            (Condition.NE, 1, 2, True),
            (Condition.NE, 2, 2, False),
            (Condition.LT, 1, 2, True),
            (Condition.LT, 2, 2, False),
            (Condition.LE, 2, 2, True),
            (Condition.LE, 3, 2, False),
            (Condition.GT, 3, 2, True),
            (Condition.GT, 2, 2, False),
            (Condition.GE, 2, 2, True),
            (Condition.GE, 1, 2, False),
        ],
    )
    def test_evaluate(self, cond, lhs, rhs, expected):
        assert cond.evaluate(lhs, rhs) is expected


class TestConflicts:
    def test_write_write_same_location(self):
        assert conflicts(
            op(OpKind.DATA_WRITE, written=1), op(OpKind.DATA_WRITE, written=2)
        )

    def test_read_write_same_location(self):
        assert conflicts(op(OpKind.DATA_READ, read=0), op(OpKind.DATA_WRITE, written=1))

    def test_read_read_does_not_conflict(self):
        assert not conflicts(op(OpKind.DATA_READ, read=0), op(OpKind.DATA_READ, read=0))

    def test_different_locations_never_conflict(self):
        assert not conflicts(
            op(OpKind.DATA_WRITE, "x", written=1),
            op(OpKind.DATA_WRITE, "y", written=1),
        )

    def test_sync_rmw_counts_as_writer(self):
        assert conflicts(op(OpKind.SYNC_RMW, read=0, written=1), op(OpKind.DATA_READ, read=0))

    def test_sync_read_pair_does_not_conflict(self):
        assert not conflicts(op(OpKind.SYNC_READ, read=0), op(OpKind.SYNC_READ, read=0))

    def test_data_read_vs_sync_write_conflicts(self):
        # Spinning on a sync location with a *data* read conflicts with the
        # sync write -- exactly the restricted race Section 6 discusses.
        assert conflicts(op(OpKind.DATA_READ, read=0), op(OpKind.SYNC_WRITE, written=0))


class TestSameLocationSyncs:
    def test_two_syncs_same_location(self):
        assert same_location_syncs(
            op(OpKind.SYNC_RMW, "s", read=0, written=1),
            op(OpKind.SYNC_WRITE, "s", written=0),
        )

    def test_sync_and_data_not_related(self):
        assert not same_location_syncs(
            op(OpKind.SYNC_RMW, "s", read=0, written=1),
            op(OpKind.DATA_READ, "s", read=0),
        )

    def test_syncs_on_different_locations(self):
        assert not same_location_syncs(
            op(OpKind.SYNC_WRITE, "s", written=0),
            op(OpKind.SYNC_WRITE, "t", written=0),
        )


class TestOperation:
    def test_operation_is_hashable_and_frozen(self):
        a = op(OpKind.DATA_READ, read=0)
        b = op(OpKind.DATA_READ, read=0)
        assert a == b
        assert hash(a) == hash(b)
        with pytest.raises(Exception):
            a.location = "y"  # frozen dataclass

    def test_property_shortcuts(self):
        rmw = op(OpKind.SYNC_RMW, read=0, written=1)
        assert rmw.is_sync and rmw.has_read and rmw.has_write
        read = op(OpKind.DATA_READ, read=5)
        assert not read.is_sync and read.has_read and not read.has_write

    def test_str_rendering(self):
        text = str(op(OpKind.SYNC_RMW, "s", proc=2, read=0, written=1))
        assert "P2" in text and "s" in text
