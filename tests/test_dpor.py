"""Tests for the DPOR explorer: equivalence with naive enumeration."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.dpor import check_program_dpor, explore_dpor, sc_results_dpor
from repro.core.drf0 import check_program
from repro.core.models import DRF1_MODEL
from repro.core.sc import (
    ExplorationConfig,
    ExplorationIncomplete,
    sc_executions,
    sc_results,
)
from repro.litmus.catalog import all_tests
from repro.machine.dsl import ThreadBuilder, build_program

from test_properties import small_programs


STRAIGHT_TESTS = [t for t in all_tests() if t.program.is_straight_line()]


class TestAgainstNaiveEnumeration:
    @pytest.mark.parametrize("test", STRAIGHT_TESTS, ids=lambda t: t.name)
    def test_result_sets_equal(self, test):
        assert sc_results_dpor(test.program) == sc_results(test.program)

    @pytest.mark.parametrize("test", STRAIGHT_TESTS, ids=lambda t: t.name)
    def test_drf0_verdicts_equal(self, test):
        assert check_program_dpor(test.program).obeys == test.drf0

    def test_drf1_verdicts_supported(self):
        for test in STRAIGHT_TESTS[:4]:
            naive = check_program(test.program, DRF1_MODEL).obeys
            dpor = check_program_dpor(test.program, DRF1_MODEL).obeys
            assert naive == dpor

    def test_reduction_on_independent_threads(self):
        """Fully independent threads collapse to a single trace."""
        program = build_program(
            [ThreadBuilder().store("a", 1), ThreadBuilder().store("b", 1),
             ThreadBuilder().store("c", 1)],
            name="independent",
        )
        assert len(explore_dpor(program)) == 1
        assert len(sc_executions(program)) == 6  # 3! interleavings

    def test_reduction_on_iriw(self):
        from repro.litmus.catalog import iriw

        program = iriw().program
        assert len(explore_dpor(program)) < len(sc_executions(program))


class TestBounds:
    def test_spin_program_raises(self):
        from repro.core.types import Condition

        spin = build_program(
            [
                ThreadBuilder().label("s").test_and_set("r", "l").branch_if(
                    Condition.NE, "r", 0, "s"
                ),
                ThreadBuilder().test_and_set("r2", "l"),
            ],
            initial_memory={"l": 1},
            name="spinner",
        )
        with pytest.raises(ExplorationIncomplete):
            explore_dpor(spin, ExplorationConfig(max_ops=50))

    def test_allow_incomplete_returns_partial(self):
        program = build_program(
            [ThreadBuilder().store("x", 1).store("x", 2)], name="uni"
        )
        results = explore_dpor(
            program, ExplorationConfig(max_ops=1, allow_incomplete=True)
        )
        assert results == []


@settings(max_examples=40, deadline=None)
@given(small_programs(max_threads=3, max_ops=3))
def test_dpor_matches_naive_on_random_programs(program):
    """The central DPOR property: identical result sets and verdicts."""
    assert sc_results_dpor(program) == sc_results(program)
    assert check_program_dpor(program).obeys == check_program(program).obeys
