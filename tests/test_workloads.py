"""Tests for the synthetic workloads: DRF0-cleanliness and hardware correctness."""

import pytest

from repro.core.contract import is_sc_result
from repro.core.drf0 import check_program, check_program_sampled
from repro.hw import AdveHillPolicy, Definition1Policy, SCPolicy
from repro.sim.system import SystemConfig, run_on_hardware
from repro.workloads import (
    barrier_workload,
    contended_release_workload,
    expected_count,
    expected_final_data,
    expected_neighbour_values,
    lock_workload,
    phase_parallel_workload,
    producer_consumer_workload,
)

POLICIES = [SCPolicy, Definition1Policy, AdveHillPolicy,
            lambda: AdveHillPolicy(drf1_optimized=True)]


class TestLockWorkload:
    def test_exhaustively_drf0(self):
        assert check_program(lock_workload(2, 1)).obeys

    def test_sampled_drf0_at_scale(self):
        assert check_program_sampled(lock_workload(4, 2), seeds=range(10)).obeys

    @pytest.mark.parametrize("policy_factory", POLICIES)
    def test_counter_correct_on_hardware(self, policy_factory):
        program = lock_workload(3, 2)
        for seed in range(6):
            run = run_on_hardware(program, policy_factory(), SystemConfig(seed=seed))
            assert run.result.memory_value("count") == expected_count(3, 2)
            assert run.result.memory_value("lock") == 0

    def test_ttas_variant_correct(self):
        program = lock_workload(3, 1, ttas=True)
        for seed in range(6):
            run = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=seed))
            assert run.result.memory_value("count") == 3

    def test_critical_and_private_work_extend_runtime(self):
        base = run_on_hardware(lock_workload(2, 1), SCPolicy(), SystemConfig(seed=0))
        busy = run_on_hardware(
            lock_workload(2, 1, critical_work=200, private_work=100),
            SCPolicy(),
            SystemConfig(seed=0),
        )
        assert busy.cycles > base.cycles + 200


class TestContendedRelease:
    def test_all_increments_land(self):
        program = contended_release_workload(num_spinners=2, hold_cycles=50)
        for seed in range(5):
            run = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=seed))
            assert run.result.memory_value("count") == 3

    def test_sampled_drf0(self):
        program = contended_release_workload(num_spinners=2, hold_cycles=30)
        assert check_program_sampled(program, seeds=range(6)).obeys

    def test_drf1_reduces_spin_traffic(self):
        """Section 6: spinning Tests serialized as writes generate more
        interconnect traffic than shared-copy spinning."""
        program = contended_release_workload(num_spinners=3, hold_cycles=300)
        base = sum(
            run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=s)).messages_sent
            for s in range(5)
        )
        drf1 = sum(
            run_on_hardware(
                program, AdveHillPolicy(drf1_optimized=True), SystemConfig(seed=s)
            ).messages_sent
            for s in range(5)
        )
        assert drf1 < base


class TestProducerConsumer:
    def test_exhaustively_drf0_small(self):
        assert check_program(producer_consumer_workload(batch_size=2)).obeys

    @pytest.mark.parametrize("policy_factory", POLICIES)
    def test_consumer_sees_full_batch(self, policy_factory):
        program = producer_consumer_workload(batch_size=4, rounds=2)
        expected = expected_final_data(4, 2)
        for seed in range(5):
            run = run_on_hardware(program, policy_factory(), SystemConfig(seed=seed))
            for loc, value in expected.items():
                assert run.result.memory_value(loc) == value
            assert is_sc_result(program, run.result)

    def test_sc_pays_per_write(self):
        """SC's cost scales with the batch; the weak orderings' does not
        (writes overlap)."""
        def cycles(policy_factory, batch):
            program = producer_consumer_workload(batch_size=batch)
            return run_on_hardware(program, policy_factory(), SystemConfig(seed=1)).cycles

        sc_growth = cycles(SCPolicy, 12) - cycles(SCPolicy, 2)
        ah_growth = cycles(AdveHillPolicy, 12) - cycles(AdveHillPolicy, 2)
        assert ah_growth < sc_growth


class TestBarrier:
    def test_sampled_drf0(self):
        assert check_program_sampled(barrier_workload(3, 1), seeds=range(6)).obeys

    @pytest.mark.parametrize("policy_factory", POLICIES)
    def test_barrier_separates_phases(self, policy_factory):
        program = phase_parallel_workload(num_procs=3, chunk=2, phases=2)
        for seed in range(4):
            run = run_on_hardware(program, policy_factory(), SystemConfig(seed=seed))
            assert is_sc_result(program, run.result)

    def test_neighbour_reads_see_phase_writes(self):
        program = phase_parallel_workload(num_procs=3, chunk=2, phases=1)
        run = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=2))
        # The last `chunk` reads of each processor are its neighbour reads.
        for proc in range(3):
            got = list(run.result.reads[proc][-2:])
            assert got == expected_neighbour_values(3, 2, 0, proc)

    def test_barrier_count_final_value(self):
        program = barrier_workload(num_procs=4, phases=1)
        run = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=0))
        assert run.result.memory_value("bcount0") == 4
        assert run.result.memory_value("bsense0") == 0
