"""Property tests for the incremental axiomatic solver.

The solver (:mod:`repro.axiomatic.solver`) must be *bit-identical* to the
legacy generate-then-filter enumerator on every query: same result sets,
same well-formed candidate counts, same budget behaviour.  These tests
pin that equivalence on the litmus catalog and on a generated corpus of
200+ random programs, then cover the solver-only surfaces (pinned target
mode, backend routing, budgets) and the differential-campaign plumbing
built on top of it (shrinking, minimization, cross-checks).
"""

from __future__ import annotations

import pytest

from repro.axiomatic import (
    CoherenceModel,
    LEGACY_BACKEND_ENV,
    SCModel,
    SearchBudgetExceeded,
    SolverConfig,
    TSOModel,
    UnsupportedProgram,
    WeakOrderingDRF,
    allowed_results,
    default_backend,
    enumerate_candidates,
    result_allowed,
    solve_candidates,
    well_formed_candidates,
)
from repro.axiomatic.checker import outcome_table
from repro.core.sc import sc_results
from repro.litmus.catalog import all_tests, store_buffer, tas_mutex
from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.generator import random_program, shrink_program
from repro.machine.isa import Store
from repro.verify.diff import (
    Disagreement,
    compare_program,
    diff_campaign,
    diff_one_seed,
    merge_diff_outcomes,
    minimize_disagreement,
    render_program,
    report_as_dict,
)
from repro.verify.sweeps import axiomatic_cross_check


def _models():
    return [SCModel(), CoherenceModel(), TSOModel(), WeakOrderingDRF()]


def _assert_backends_agree(program):
    for model in _models():
        solver = allowed_results(program, model, backend="solver")
        oracle = allowed_results(program, model, backend="enumerator")
        assert solver == oracle, (
            f"{program.name} under {model.name}: solver and enumerator "
            f"disagree ({len(solver)} vs {len(oracle)} results)"
        )


class TestBackendBitIdentity:
    def test_litmus_catalog(self):
        """Every supported catalog test, every model, both backends."""
        supported = 0
        for test in all_tests():
            try:
                _assert_backends_agree(test.program)
            except UnsupportedProgram:
                continue
            supported += 1
        # The catalog's straight-line tests, including the fenced and
        # RMW ones, must all go through both backends.
        assert supported >= 16

    @pytest.mark.parametrize("chunk", range(8))
    def test_generated_corpus(self, chunk):
        """200+ random programs, every model, both backends."""
        for seed in range(chunk * 25, chunk * 25 + 25):
            _assert_backends_agree(random_program(seed))

    def test_rmw_program(self):
        """Competing test-and-sets exercise the RMW unit propagation."""
        t0 = ThreadBuilder().test_and_set("r0", "s", set_value=1)
        t1 = ThreadBuilder().test_and_set("r1", "s", set_value=2).unset("s")
        _assert_backends_agree(build_program([t0, t1], name="tas-race"))

    def test_fence_program(self):
        """Fences reach both backends through the shared event layout."""
        t0 = ThreadBuilder().store("x", 1).fence().load("r0", "y")
        t1 = ThreadBuilder().store("y", 1).fence().load("r1", "x")
        program = build_program([t0, t1], name="sb-fenced")
        _assert_backends_agree(program)
        # The fence forbids the store-buffer relaxation under TSO: the
        # r0=0, r1=0 outcome must be gone from the TSO set too.
        assert allowed_results(program, TSOModel()) == allowed_results(
            program, SCModel()
        )

    def test_solver_matches_operational_sc(self):
        for seed in range(20):
            program = random_program(seed)
            assert allowed_results(program, SCModel()) == sc_results(program)


class TestWellFormedCandidates:
    def test_counts_match_enumerator(self):
        for seed in range(10):
            program = random_program(seed)
            solver_n = sum(1 for _ in well_formed_candidates(program))
            enum_n = sum(1 for _ in enumerate_candidates(program))
            assert solver_n == enum_n

    def test_solve_candidates_without_model(self):
        program = store_buffer().program
        results = {c.result() for c in solve_candidates(program)}
        assert results == {
            c.result() for c in enumerate_candidates(program)
        }


class TestBudgets:
    @pytest.mark.parametrize("backend", ["solver", "enumerator"])
    def test_candidate_cap(self, backend):
        program = store_buffer().program
        config = SolverConfig(max_candidates=1)
        with pytest.raises(SearchBudgetExceeded):
            allowed_results(program, SCModel(), backend, config)

    @pytest.mark.parametrize("backend", ["solver", "enumerator"])
    def test_deadline(self, backend):
        program = store_buffer().program
        config = SolverConfig(max_seconds=0.0)
        with pytest.raises(SearchBudgetExceeded):
            allowed_results(program, SCModel(), backend, config)

    @pytest.mark.parametrize("backend", ["solver", "enumerator"])
    def test_generous_budget_is_invisible(self, backend):
        program = store_buffer().program
        config = SolverConfig(max_candidates=10_000, max_seconds=60.0)
        assert allowed_results(
            program, SCModel(), backend, config
        ) == allowed_results(program, SCModel())


class TestTargetMode:
    def test_pinned_query_matches_membership(self):
        """result_allowed == (result in allowed_results), per model."""
        for seed in range(8):
            program = random_program(seed)
            universe = {
                c.result() for c in well_formed_candidates(program)
            }
            for model in _models():
                admitted = allowed_results(program, model)
                for result in universe:
                    assert result_allowed(program, model, result) == (
                        result in admitted
                    )

    def test_foreign_result_rejected(self):
        program = store_buffer().program
        some = next(iter(allowed_results(program, SCModel())))
        other = build_program(
            [ThreadBuilder().load("r0", "x")], name="other"
        )
        # A result whose read shape does not match the program is simply
        # not allowed, never an error.
        foreign = next(
            iter(allowed_results(other, SCModel()))
        )
        assert result_allowed(program, SCModel(), foreign) is False
        assert result_allowed(program, SCModel(), some) is True


class TestBackendRouting:
    def test_default_is_solver(self, monkeypatch):
        monkeypatch.delenv(LEGACY_BACKEND_ENV, raising=False)
        assert default_backend() == "solver"

    @pytest.mark.parametrize("flag", ["1", "true", "YES", " on "])
    def test_env_opt_out(self, monkeypatch, flag):
        monkeypatch.setenv(LEGACY_BACKEND_ENV, flag)
        assert default_backend() == "enumerator"

    @pytest.mark.parametrize("flag", ["", "0", "no", "off"])
    def test_env_noise_ignored(self, monkeypatch, flag):
        monkeypatch.setenv(LEGACY_BACKEND_ENV, flag)
        assert default_backend() == "solver"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            allowed_results(
                store_buffer().program, SCModel(), backend="z3"
            )


class TestOutcomeTable:
    def test_rows_match_allowed_results(self):
        programs = [store_buffer().program, tas_mutex().program]
        models = _models()
        rows = outcome_table(programs, models)
        assert [
            (r["program"], r["model"]) for r in rows
        ] == [(p.name, m.name) for p in programs for m in models]
        for row in rows:
            program = next(
                p for p in programs if p.name == row["program"]
            )
            model = next(m for m in models if m.name == row["model"])
            assert row["num_results"] == len(
                allowed_results(program, model)
            )


class TestShrinker:
    def test_shrinks_to_fixpoint(self):
        t0 = ThreadBuilder().store("x", 3).store("y", 2).load("r0", "x")
        t1 = ThreadBuilder().store("x", 1).load("r1", "y")
        program = build_program([t0, t1], name="big")

        def has_store_to_x(p):
            return any(
                isinstance(i, Store) and i.location == "x"
                for code in p.threads
                for i in code.instructions
            )

        small = shrink_program(program, has_store_to_x, name="tiny")
        assert small.name == "tiny"
        assert has_store_to_x(small)
        # Fixpoint: one thread, one instruction, value shrunk to 0.
        assert len(small.threads) == 1
        (instr,) = small.threads[0].instructions
        assert isinstance(instr, Store) and instr.src == 0

    def test_false_predicate_returns_input(self):
        program = store_buffer().program
        assert shrink_program(program, lambda p: False) is program

    def test_labeled_threads_keep_instructions(self):
        from repro.core.types import Condition

        t0 = (
            ThreadBuilder()
            .label("spin")
            .load("r0", "x")
            .branch_if(Condition.EQ, "r0", 0, "spin")
        )
        t1 = ThreadBuilder().store("x", 1).store("y", 1)
        program = build_program([t0, t1], name="labeled")
        shrunk = shrink_program(
            program, lambda p: len(p.threads) == 2
        )
        # Thread 0 has labels, so its body must survive intact.
        assert shrunk.threads[0] == program.threads[0]


class TestDifferentialCampaign:
    def test_clean_corpus_has_no_disagreements(self):
        report = diff_campaign(range(12))
        assert report.ok
        assert report.programs_run == 12
        assert report.comparisons > 0
        assert report.hardware_runs > 0
        assert report_as_dict(report)["ok"] is True

    def test_compare_program_counts(self):
        counters = {}
        failures = compare_program(
            store_buffer().program, range(2), counters=counters
        )
        assert failures == []
        # 4 backend + 1 sc-explorer + 1 wo-contract + per-run simulator.
        assert counters["hardware_runs"] == 8
        assert counters["comparisons"] == 6 + 8

    def test_merge_preserves_order(self):
        outcomes = [diff_one_seed(seed) for seed in (3, 1, 2)]
        report = merge_diff_outcomes(outcomes)
        assert report.programs_run + report.skipped == 3

    def test_minimize_disagreement(self, monkeypatch):
        """Minimization shrinks a (synthetic) disagreement to its core."""

        def fake_compare(program, hardware_seeds=range(2), *a, **k):
            stores = any(
                isinstance(i, Store) and i.location == "x"
                for code in program.threads
                for i in code.instructions
            )
            return [("backend", "synthetic")] if stores else []

        import repro.verify.diff as diff_mod

        seed = next(
            s
            for s in range(100)
            if fake_compare(random_program(s))
        )
        monkeypatch.setattr(diff_mod, "compare_program", fake_compare)
        disagreement = Disagreement(
            seed=seed,
            kind="backend",
            detail="synthetic",
            program_name=f"fuzz-{seed}",
        )
        minimized = minimize_disagreement(disagreement)
        assert minimized.litmus_name == f"diff-{seed}-backend"
        program = minimized.minimized
        assert program is not None
        assert program.name == minimized.litmus_name
        # Shrunk to the single instruction the predicate needs.
        assert sum(
            len(code.instructions) for code in program.threads
        ) == 1
        assert "Store" in render_program(program)

    def test_render_program(self):
        text = render_program(store_buffer().program)
        assert text.startswith("SB:")
        assert "init:" in text and "P0:" in text and "P1:" in text


class TestSweepCrossCheck:
    def test_agreement_on_sc_results(self):
        program = store_buffer().program
        assert axiomatic_cross_check(program, sc_results(program)) == []

    def test_unsupported_program_skipped(self):
        from repro.core.types import Condition

        t0 = (
            ThreadBuilder()
            .label("l")
            .load("r", "x")
            .branch_if(Condition.EQ, "r", 0, "l")
        )
        program = build_program([t0], name="branchy")
        from repro.core.execution import Result

        result = Result(reads=((0,),), final_memory=(("x", 0),))
        assert axiomatic_cross_check(program, [result]) == []
