"""Tests for deterministic fault injection and the liveness watchdog.

The fault layer's contract has three legs:

1. **Determinism** -- same plan + same seeds = bit-identical runs,
   including the injector's own counters;
2. **Verdict invariance** -- delivery-preserving plans may move timing
   but never move a Definition-2 verdict;
3. **Detection, not hanging** -- delivery-violating plans end in a
   :class:`LivenessError` that names the stuck processor and its stall
   cause.
"""

import dataclasses

import pytest

from repro.hw import POLICY_FACTORIES
from repro.litmus.catalog import ThreadBuilder, build_program, by_name
from repro.sim import (
    DELIVERY_PRESERVING_PLANS,
    DELIVERY_VIOLATING_PLANS,
    FaultConfigError,
    FaultInjector,
    FaultPlan,
    LivenessError,
    SimulationDeadlock,
    SystemConfig,
    WatchdogTimeout,
    build_injector,
    run_on_hardware,
)


def _run(program, policy_name, config):
    return run_on_hardware(program, POLICY_FACTORIES[policy_name](), config)


class TestFaultPlanValidation:
    def test_all_named_plans_are_valid(self):
        for plan in DELIVERY_PRESERVING_PLANS.values():
            plan.validate()
            assert plan.delivery_preserving
        for plan in DELIVERY_VIOLATING_PLANS.values():
            plan.validate()
            assert not plan.delivery_preserving

    def test_rejects_bad_probability(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(name="bad", duplicate_prob=1.5).validate()

    def test_rejects_reorder_without_window(self):
        with pytest.raises(FaultConfigError):
            FaultPlan(name="bad", reorder_prob=0.5).validate()

    def test_rejects_liveness_breaking_delays(self):
        # counter + reserve-clear delays must stay under the NACK retry
        # period or a reserved line can starve its waiters forever.
        with pytest.raises(FaultConfigError):
            FaultPlan(
                name="bad", counter_decrement_delay=5, reserve_clear_delay=5
            ).validate()

    def test_null_injector_for_baseline(self):
        assert not build_injector(None).enabled
        assert not build_injector(FaultPlan()).enabled
        assert build_injector(FaultPlan(delay_jitter=2)).enabled


class TestDeterminism:
    @pytest.mark.parametrize("plan_name", sorted(DELIVERY_PRESERVING_PLANS))
    def test_identical_runs_under_same_plan(self, plan_name):
        program = by_name("MP+sync").program
        config = SystemConfig(
            fault_plan=DELIVERY_PRESERVING_PLANS[plan_name], seed=3
        )
        first = _run(program, "adve-hill", config)
        second = _run(program, "adve-hill", config)
        assert first.result == second.result
        assert first.cycles == second.cycles
        assert first.fault_stats == second.fault_stats

    def test_fault_seed_changes_injection(self):
        plan = DELIVERY_PRESERVING_PLANS["jitter-heavy"]
        program = by_name("MP+sync").program
        base = _run(program, "sc", SystemConfig(fault_plan=plan))
        reseeded = _run(
            program, "sc", SystemConfig(fault_plan=plan.with_seed(99))
        )
        assert base.fault_stats != reseeded.fault_stats

    def test_injector_rng_is_isolated_per_run(self):
        injector = FaultInjector(FaultPlan(delay_jitter=4), run_seed=7)
        again = FaultInjector(FaultPlan(delay_jitter=4), run_seed=7)
        draws = [injector.service_delay() for _ in range(20)]
        assert draws == [again.service_delay() for _ in range(20)]


class TestVerdictInvariance:
    @pytest.mark.parametrize(
        "plan_name", ["jitter-heavy", "reorder", "duplicate", "kitchen-sink"]
    )
    @pytest.mark.parametrize("policy_name", ["sc", "adve-hill", "relaxed"])
    def test_verdicts_stable_across_plans(self, plan_name, policy_name):
        from repro.core.contract import appears_sc

        program = by_name("MP+sync").program
        plan = DELIVERY_PRESERVING_PLANS[plan_name]
        seeds = range(8)
        baseline = {
            _run(program, policy_name, SystemConfig(seed=s)).result
            for s in seeds
        }
        faulted_cfg = SystemConfig(fault_plan=plan, watchdog_cycles=50_000)
        faulted = {
            _run(
                program, policy_name, dataclasses.replace(faulted_cfg, seed=s)
            ).result
            for s in seeds
        }
        assert (
            appears_sc(program, baseline).appears_sc
            == appears_sc(program, faulted).appears_sc
        )

    def test_duplicates_are_suppressed(self):
        plan = DELIVERY_PRESERVING_PLANS["duplicate"]
        run = _run(
            by_name("MP+sync").program, "sc", SystemConfig(fault_plan=plan)
        )
        assert run.fault_stats.get("messages_duplicated", 0) > 0
        assert run.fault_stats.get("duplicates_suppressed", 0) > 0

    def test_faults_actually_fire(self):
        plan = DELIVERY_PRESERVING_PLANS["kitchen-sink"]
        run = _run(
            by_name("MP+sync").program, "adve-hill",
            SystemConfig(fault_plan=plan),
        )
        assert sum(run.fault_stats.values()) > 0


class TestLivenessDetection:
    def test_dropped_messages_diagnosed_not_hung(self):
        plan = DELIVERY_VIOLATING_PLANS["drop-all"]
        config = SystemConfig(fault_plan=plan, watchdog_cycles=5_000)
        with pytest.raises(LivenessError) as excinfo:
            _run(by_name("MP+sync").program, "adve-hill", config)
        assert excinfo.value.stuck  # names who is stuck and why
        assert any("P" in line for line in excinfo.value.stuck)

    def test_watchdog_catches_reserve_bit_livelock(self):
        # Drop exactly the DATA_EX reply to P0's plain store: its counter
        # never decrements, the following sync store commits but leaves
        # its reserve bit set forever, and P1's sync load NACK-retries
        # against that reservation endlessly -- live events, no progress.
        # Only the watchdog (not queue-drain deadlock detection) sees it.
        t0 = ThreadBuilder().store("x", 1).sync_store("s", 1)
        t1 = ThreadBuilder().delay(40).sync_load("r0", "s")
        program = build_program([t0, t1], name="reserve-livelock")
        plan = FaultPlan(
            name="drop-first-data-ex",
            drop_prob=1.0,
            drop_kinds=("data_ex",),
            drop_limit=1,
        )
        config = SystemConfig(
            topology="bus", fault_plan=plan, watchdog_cycles=400
        )
        with pytest.raises(WatchdogTimeout) as excinfo:
            _run(program, "adve-hill", config)
        assert any(
            "block:reserve-nack" in line for line in excinfo.value.stuck
        )

    def test_watchdog_no_false_positive_on_clean_run(self):
        config = SystemConfig(watchdog_cycles=10_000)
        run = _run(by_name("MP+sync").program, "adve-hill", config)
        assert run.result is not None

    def test_watchdog_no_false_positive_under_heavy_faults(self):
        config = SystemConfig(
            fault_plan=DELIVERY_PRESERVING_PLANS["kitchen-sink"],
            watchdog_cycles=50_000,
        )
        run = _run(by_name("SB+sync").program, "adve-hill", config)
        assert run.result is not None

    def test_deadlock_diagnosis_renders(self):
        plan = DELIVERY_VIOLATING_PLANS["drop-all"]
        config = SystemConfig(fault_plan=plan, watchdog_cycles=5_000)
        try:
            _run(by_name("MP+sync").program, "sc", config)
        except LivenessError as exc:
            text = exc.diagnosis()
            assert "P" in text and "\n" in text
        else:  # pragma: no cover - the run must not complete
            pytest.fail("delivery-violating plan completed")


class TestFaultPlumbing:
    def test_snoop_substrate_rejects_faults(self):
        config = SystemConfig(
            topology="bus",
            coherence="snoop",
            fault_plan=DELIVERY_PRESERVING_PLANS["jitter-light"],
        )
        with pytest.raises(ValueError, match="snooping"):
            _run(by_name("MP+sync").program, "sc", config)

    def test_fault_stats_empty_without_plan(self):
        run = _run(by_name("MP+sync").program, "sc", SystemConfig())
        assert run.fault_stats == {}

    def test_protocol_transients_with_transport_nacks(self):
        # The protocol's own NACK/retry machinery (cross-reservation
        # transients) must compose with transport-level NACK injection.
        plan = DELIVERY_PRESERVING_PLANS["transport-nack"]
        config = SystemConfig(fault_plan=plan, watchdog_cycles=50_000)
        program = by_name("TAS").program
        run = _run(program, "adve-hill", config)
        assert run.fault_stats.get("transport_retries", 0) >= 0
        assert run.result is not None


class TestChaosHarness:
    def test_quick_chaos_sweep_passes(self):
        from repro.verify.chaos import chaos_sweep

        report = chaos_sweep(quick=True, seeds=range(4))
        assert report.invariance_holds
        assert report.watchdog_sound
        assert report.ok
        text = report.render()
        assert "MATCH" in text and "HOLDS" in text
        payload = report.to_json()
        assert payload["ok"] is True
