"""Unit tests for the memory-system policies' gate and blocking logic."""

import pytest

from repro.core.types import OpKind
from repro.hw import (
    AdveHillPolicy,
    BlockLevel,
    Definition1Policy,
    POLICY_FACTORIES,
    RelaxedPolicy,
    SCPolicy,
)
from repro.sim.access import AccessRecord, BlockLevel as AccessBlockLevel


class FakeProcessor:
    """Just enough of the Processor bookkeeping surface for policies."""

    def __init__(self, accesses):
        self.accesses = accesses
        self.last_generated = accesses[-1] if accesses else None

    def not_globally_performed(self):
        return [
            a for a in self.accesses if a.generated and not a.globally_performed
        ]

    def pending_syncs(self, level):
        if level is BlockLevel.COMMIT:
            return [a for a in self.accesses if a.is_sync and not a.committed]
        return [a for a in self.accesses if a.is_sync and not a.globally_performed]


def make_access(uid, kind, state="generated"):
    a = AccessRecord(uid, 0, uid, kind, "x", 1 if kind.has_write else None)
    if state in ("generated", "committed", "gp"):
        a.mark_generated(0)
    if state in ("committed", "gp"):
        a.mark_committed(1, 0 if kind.has_read else None)
    if state == "gp":
        a.mark_globally_performed(2)
    return a


class TestBlockLevelReExport:
    def test_same_enum_object(self):
        assert BlockLevel is AccessBlockLevel


class TestSCPolicy:
    def test_gates_on_previous_access_gp(self):
        prev = make_access(0, OpKind.DATA_WRITE, "committed")
        proc = FakeProcessor([prev])
        nxt = make_access(1, OpKind.DATA_READ, "generated")
        gates = SCPolicy().generation_gate(proc, nxt)
        assert len(gates) == 1
        assert gates[0].access is prev and gates[0].level is BlockLevel.GP

    def test_no_gate_when_previous_globally_performed(self):
        prev = make_access(0, OpKind.DATA_WRITE, "gp")
        proc = FakeProcessor([prev])
        gates = SCPolicy().generation_gate(proc, make_access(1, OpKind.DATA_READ))
        assert gates == []

    def test_blocks_thread_until_gp(self):
        assert SCPolicy().block_level(make_access(0, OpKind.DATA_WRITE)) is BlockLevel.GP


class TestDefinition1Policy:
    def test_sync_gates_on_all_outstanding(self):
        w1 = make_access(0, OpKind.DATA_WRITE, "committed")
        w2 = make_access(1, OpKind.DATA_WRITE, "gp")
        r1 = make_access(2, OpKind.DATA_READ, "committed")  # not gp
        proc = FakeProcessor([w1, w2, r1])
        sync = make_access(3, OpKind.SYNC_WRITE)
        gates = Definition1Policy().generation_gate(proc, sync)
        gated = {g.access.uid for g in gates}
        assert gated == {0, 2}  # everything not yet globally performed
        assert all(g.level is BlockLevel.GP for g in gates)

    def test_data_gates_only_on_pending_syncs(self):
        w = make_access(0, OpKind.DATA_WRITE, "committed")
        s = make_access(1, OpKind.SYNC_WRITE, "committed")  # not gp
        proc = FakeProcessor([w, s])
        gates = Definition1Policy().generation_gate(
            proc, make_access(2, OpKind.DATA_READ)
        )
        assert {g.access.uid for g in gates} == {1}

    def test_no_gate_when_syncs_done(self):
        s = make_access(0, OpKind.SYNC_WRITE, "gp")
        proc = FakeProcessor([s])
        gates = Definition1Policy().generation_gate(
            proc, make_access(1, OpKind.DATA_WRITE)
        )
        assert gates == []

    def test_thread_never_blocks_beyond_reads(self):
        assert (
            Definition1Policy().block_level(make_access(0, OpKind.DATA_WRITE))
            is BlockLevel.NONE
        )


class TestAdveHillPolicy:
    def test_gates_on_uncommitted_syncs_only(self):
        s_done = make_access(0, OpKind.SYNC_WRITE, "committed")
        s_pending = make_access(1, OpKind.SYNC_RMW, "generated")
        w = make_access(2, OpKind.DATA_WRITE, "generated")  # data: irrelevant
        proc = FakeProcessor([s_done, s_pending, w])
        gates = AdveHillPolicy().generation_gate(
            proc, make_access(3, OpKind.DATA_READ)
        )
        assert {g.access.uid for g in gates} == {1}
        assert all(g.level is BlockLevel.COMMIT for g in gates)

    def test_commit_suffices_not_gp(self):
        """The whole point: committed-but-not-globally-performed syncs do
        not gate (Definition 1 would wait)."""
        s = make_access(0, OpKind.SYNC_WRITE, "committed")
        proc = FakeProcessor([s])
        assert AdveHillPolicy().generation_gate(
            proc, make_access(1, OpKind.DATA_WRITE)
        ) == []

    def test_flags(self):
        base = AdveHillPolicy()
        assert base.requires_caches and base.use_reserve_bits
        assert not base.drf1_optimized
        opt = AdveHillPolicy(drf1_optimized=True)
        assert opt.drf1_optimized
        assert "drf1" in opt.name


class TestRelaxedPolicy:
    def test_never_gates_never_blocks(self):
        prev = make_access(0, OpKind.SYNC_WRITE, "generated")
        proc = FakeProcessor([prev])
        policy = RelaxedPolicy()
        assert policy.generation_gate(proc, make_access(1, OpKind.DATA_READ)) == []
        assert policy.block_level(make_access(1, OpKind.DATA_WRITE)) is BlockLevel.NONE

    def test_uses_cache_write_buffer(self):
        assert RelaxedPolicy().buffers_cache_writes
        assert not SCPolicy().buffers_cache_writes


class TestPolicyRegistry:
    def test_all_factories_produce_distinct_names(self):
        names = {factory().name for factory in POLICY_FACTORIES.values()}
        assert len(names) == len(POLICY_FACTORIES)

    def test_fresh_instances_each_call(self):
        a = POLICY_FACTORIES["adve-hill"]()
        b = POLICY_FACTORIES["adve-hill"]()
        assert a is not b
