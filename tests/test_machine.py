"""Unit tests for the register-machine frontend (ISA, programs, interpreter)."""

import pytest

from repro.core.types import Condition, OpKind
from repro.machine.dsl import ThreadBuilder, build_program
from repro.machine.interpreter import (
    DelayRequest,
    InterpreterError,
    MemRequest,
    ThreadState,
    complete,
    consume_delay,
    run_to_memory_op,
)
from repro.machine.isa import (
    Add,
    BranchIf,
    Delay,
    Jump,
    Load,
    Mov,
    Store,
    SyncLoad,
    TestAndSet,
    Unset,
    written_value,
)
from repro.machine.program import Program, ProgramError, ThreadCode, registers_used


class TestThreadCode:
    def test_undefined_label_rejected(self):
        with pytest.raises(ProgramError):
            ThreadCode((Jump("nowhere"),), {})

    def test_label_out_of_range_rejected(self):
        with pytest.raises(ProgramError):
            ThreadCode((Mov("r0", 1),), {"bad": 5})

    def test_memory_instructions_listed_in_order(self):
        code = ThreadCode((Mov("r0", 1), Store("x", "r0"), Load("r1", "y")), {})
        memops = code.memory_instructions()
        assert [type(i) for i in memops] == [Store, Load]

    def test_target_resolution(self):
        code = ThreadCode((Mov("r0", 1), Jump("end")), {"end": 2})
        assert code.target("end") == 2


class TestProgramMake:
    def test_locations_inferred_with_zero_default(self):
        program = build_program([ThreadBuilder().store("x", 1).load("r0", "y")])
        assert program.initial_memory == {"x": 0, "y": 0}

    def test_explicit_initial_values_kept(self):
        program = build_program(
            [ThreadBuilder().load("r0", "flag")], initial_memory={"flag": 7}
        )
        assert program.initial_memory["flag"] == 7

    def test_sync_locations_detected(self):
        t = ThreadBuilder().store("x", 1).test_and_set("r0", "lock").unset("door")
        program = build_program([t])
        assert program.sync_locations() == ("door", "lock")

    def test_straight_line_detection(self):
        straight = build_program([ThreadBuilder().store("x", 1)])
        assert straight.is_straight_line()
        loopy = build_program(
            [ThreadBuilder().label("l").load("r", "x").branch_if(Condition.EQ, "r", 0, "l")]
        )
        assert not loopy.is_straight_line()

    def test_static_op_count(self):
        program = build_program(
            [ThreadBuilder().store("x", 1).load("r", "y"), ThreadBuilder().unset("s")]
        )
        assert program.static_op_count() == 3

    def test_registers_used(self):
        t = ThreadBuilder().mov("a", 1).add("b", "a", 2).store("x", "b").build()
        assert registers_used(t.instructions) == ("a", "b")


class TestWrittenValue:
    def test_unset_always_writes_zero(self):
        assert written_value(Unset("s"), 99) == 0

    def test_test_and_set_writes_set_value(self):
        assert written_value(TestAndSet("r0", "s", set_value=3), 99) == 3

    def test_store_writes_operand(self):
        assert written_value(Store("x", "r0"), 42) == 42


class TestDslLabels:
    def test_duplicate_label_rejected(self):
        builder = ThreadBuilder().label("a")
        with pytest.raises(ProgramError):
            builder.label("a")

    def test_acquire_emits_tas_loop(self):
        code = ThreadBuilder().acquire("lock").build()
        kinds = [type(i) for i in code.instructions]
        assert TestAndSet in kinds and BranchIf in kinds

    def test_acquire_ttas_spins_with_sync_load(self):
        code = ThreadBuilder().acquire_ttas("lock").build()
        kinds = [type(i) for i in code.instructions]
        assert SyncLoad in kinds and TestAndSet in kinds


class TestInterpreter:
    def test_local_arithmetic_runs_to_memory_op(self):
        code = (
            ThreadBuilder()
            .mov("a", 2)
            .add("b", "a", 3)
            .sub("c", "b", 1)
            .mul("d", "c", 10)
            .store("x", "d")
            .build()
        )
        state = ThreadState()
        pending, steps = run_to_memory_op(code, state)
        assert isinstance(pending, MemRequest)
        assert pending.kind is OpKind.DATA_WRITE
        assert pending.write_value == 40
        assert steps == 4

    def test_branch_taken_and_not_taken(self):
        code = (
            ThreadBuilder()
            .mov("a", 1)
            .branch_if(Condition.EQ, "a", 1, "skip")
            .store("x", 99)
            .label("skip")
            .store("y", 1)
            .build()
        )
        state = ThreadState()
        pending, _ = run_to_memory_op(code, state)
        assert pending.location == "y"

    def test_jump(self):
        code = (
            ThreadBuilder().jump("end").store("x", 1).label("end").store("y", 2).build()
        )
        state = ThreadState()
        pending, _ = run_to_memory_op(code, state)
        assert pending.location == "y"

    def test_halt_returns_none(self):
        code = ThreadBuilder().mov("a", 1).build()
        state = ThreadState()
        pending, _ = run_to_memory_op(code, state)
        assert pending is None
        assert state.halted(code)

    def test_delay_surfaces_and_can_be_skipped(self):
        code = ThreadBuilder().delay(5).store("x", 1).build()
        state = ThreadState()
        pending, _ = run_to_memory_op(code, state)
        assert pending == DelayRequest(5)
        consume_delay(state)
        pending, _ = run_to_memory_op(code, state)
        assert pending.location == "x"

        state2 = ThreadState()
        pending2, _ = run_to_memory_op(code, state2, skip_delays=True)
        assert pending2.location == "x"

    def test_complete_writes_read_value_to_register(self):
        code = ThreadBuilder().load("r0", "x").store("y", "r0").build()
        state = ThreadState()
        pending, _ = run_to_memory_op(code, state)
        complete(code, state, pending, 17)
        assert state.read_reg("r0") == 17
        pending, _ = run_to_memory_op(code, state)
        assert pending.write_value == 17

    def test_complete_rejects_value_for_pure_write(self):
        code = ThreadBuilder().store("x", 1).build()
        state = ThreadState()
        pending, _ = run_to_memory_op(code, state)
        with pytest.raises(InterpreterError):
            complete(code, state, pending, 3)

    def test_complete_requires_value_for_read(self):
        code = ThreadBuilder().load("r0", "x").build()
        state = ThreadState()
        pending, _ = run_to_memory_op(code, state)
        with pytest.raises(InterpreterError):
            complete(code, state, pending, None)

    def test_test_and_set_request_carries_set_value(self):
        code = ThreadBuilder().test_and_set("r0", "lock", set_value=9).build()
        state = ThreadState()
        pending, _ = run_to_memory_op(code, state)
        assert pending.kind is OpKind.SYNC_RMW
        assert pending.write_value == 9

    def test_local_infinite_loop_detected(self):
        code = ThreadBuilder().label("spin").jump("spin").build()
        with pytest.raises(InterpreterError):
            run_to_memory_op(code, ThreadState())

    def test_registers_default_to_zero(self):
        state = ThreadState()
        assert state.read_reg("never_written") == 0
        assert state.operand(41) == 41

    def test_state_key_and_copy_independent(self):
        state = ThreadState()
        state.regs["a"] = 1
        clone = state.copy()
        clone.regs["a"] = 2
        assert state.read_reg("a") == 1
        assert state.key() != clone.key()
