"""Tests for the release-consistency comparison policy (RCsc)."""

import pytest

from repro.core.contract import is_sc_result
from repro.core.types import OpKind
from repro.hw import (
    AdveHillPolicy,
    BlockLevel,
    Definition1Policy,
    ReleaseConsistencyPolicy,
)
from repro.sim.system import SystemConfig, run_on_hardware
from repro.workloads import lock_workload, phase_parallel_workload

from helpers import lock_increment_program, message_passing_program
from test_hw_policies import FakeProcessor, make_access


class TestGateLogic:
    def test_release_gates_on_everything_prior(self):
        w = make_access(0, OpKind.DATA_WRITE, "committed")  # not yet GP
        proc = FakeProcessor([w])
        gates = ReleaseConsistencyPolicy().generation_gate(
            proc, make_access(1, OpKind.SYNC_WRITE)
        )
        assert {g.access.uid for g in gates} == {0}
        assert all(g.level is BlockLevel.GP for g in gates)

    def test_acquire_does_not_gate_on_prior_data(self):
        """The RC relaxation Definition 1 lacks: a pure acquire ignores
        earlier data accesses."""
        w = make_access(0, OpKind.DATA_WRITE, "committed")  # not GP
        proc = FakeProcessor([w])
        gates = ReleaseConsistencyPolicy().generation_gate(
            proc, make_access(1, OpKind.SYNC_READ)
        )
        assert gates == []

    def test_acquire_gates_on_prior_syncs(self):
        """The 'sc' in RCsc: sync accesses stay SC among themselves."""
        s = make_access(0, OpKind.SYNC_WRITE, "committed")  # not GP
        proc = FakeProcessor([s])
        gates = ReleaseConsistencyPolicy().generation_gate(
            proc, make_access(1, OpKind.SYNC_READ)
        )
        assert {g.access.uid for g in gates} == {0}

    def test_data_after_release_is_free(self):
        s = make_access(0, OpKind.SYNC_WRITE, "committed")  # release, not GP
        proc = FakeProcessor([s])
        gates = ReleaseConsistencyPolicy().generation_gate(
            proc, make_access(1, OpKind.DATA_WRITE)
        )
        assert gates == []

    def test_rmw_counts_as_release(self):
        w = make_access(0, OpKind.DATA_WRITE, "committed")
        proc = FakeProcessor([w])
        gates = ReleaseConsistencyPolicy().generation_gate(
            proc, make_access(1, OpKind.SYNC_RMW)
        )
        assert {g.access.uid for g in gates} == {0}


class TestContract:
    @pytest.mark.parametrize(
        "program_factory",
        [lambda: message_passing_program(sync=True),
         lambda: lock_increment_program(2),
         lambda: phase_parallel_workload(3, 2, 1)],
    )
    def test_appears_sc_on_drf0_programs(self, program_factory):
        program = program_factory()
        for seed in range(10):
            run = run_on_hardware(
                program, ReleaseConsistencyPolicy(), SystemConfig(seed=seed)
            )
            assert is_sc_result(program, run.result)


class TestPerformancePosition:
    def test_rc_not_slower_than_def1_on_phases(self):
        program = phase_parallel_workload(4, 4, 2)

        def mean(factory):
            return sum(
                run_on_hardware(program, factory(), SystemConfig(seed=s)).cycles
                for s in range(6)
            ) / 6

        assert mean(ReleaseConsistencyPolicy) <= mean(Definition1Policy) * 1.02

    def test_adve_hill_still_wins_on_locks(self):
        program = lock_workload(4, 2)

        def mean(factory):
            return sum(
                run_on_hardware(program, factory(), SystemConfig(seed=s)).cycles
                for s in range(6)
            ) / 6

        assert mean(AdveHillPolicy) < mean(ReleaseConsistencyPolicy)
