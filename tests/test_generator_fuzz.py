"""Tests for the random program generator and the fuzz harness."""

import pytest

from repro.cli import main
from repro.machine.generator import (
    GeneratorConfig,
    random_program,
    random_programs,
)
from repro.verify.fuzz import fuzz


class TestGenerator:
    def test_deterministic_in_seed(self):
        a = random_program(17)
        b = random_program(17)
        assert a.threads == b.threads
        assert a.initial_memory == b.initial_memory

    def test_different_seeds_differ_somewhere(self):
        programs = random_programs(range(20))
        signatures = {
            tuple(tuple(code.instructions) for code in p.threads)
            for p in programs
        }
        assert len(signatures) > 1

    def test_respects_thread_bound(self):
        cfg = GeneratorConfig(max_threads=2, max_ops_per_thread=2)
        for seed in range(30):
            program = random_program(seed, cfg)
            assert 1 <= program.num_procs <= 2
            assert all(
                len(code.memory_instructions()) <= 2 for code in program.threads
            )

    def test_straight_line_always(self):
        assert all(
            random_program(seed).is_straight_line() for seed in range(30)
        )

    def test_locations_from_config(self):
        cfg = GeneratorConfig(data_locations=("a",), sync_locations=("l",))
        program = random_program(3, cfg)
        assert set(program.initial_memory) <= {"a", "l"}


class TestFuzzHarness:
    def test_clean_campaign(self):
        report = fuzz(range(8), hardware_seeds=range(2))
        assert report.ok
        assert report.programs_run == 8
        assert report.hardware_runs > 0

    def test_cross_enumerators_can_be_skipped(self):
        report = fuzz(range(3), check_cross_enumerators=False)
        assert report.ok

    def test_cli_fuzz_command(self, capsys):
        assert main(["fuzz", "--programs", "4"]) == 0
        out = capsys.readouterr().out
        assert "0 failures" in out
