"""Tests for the Eraser-style lockset analysis."""

import pytest

from repro.analysis import (
    LocationState,
    analyze_execution,
    analyze_program,
)
from repro.core.sc import random_sc_execution
from repro.machine.dsl import ThreadBuilder, build_program
from repro.workloads import lock_workload, producer_consumer_workload

from helpers import racy_program, store_buffer_program


class TestDiscipline:
    def test_lock_protected_counter_is_clean(self):
        report = analyze_program(lock_workload(3, 1))
        assert report.clean
        assert report.locksets["count"] == frozenset({"lock"})

    def test_two_locks_intersect(self):
        """A location protected by lock A in one section and lock B in
        another loses its candidates."""
        t0 = (
            ThreadBuilder()
            .acquire("A").load("t", "x").add("t", "t", 1).store("x", "t").release("A")
        )
        t1 = (
            ThreadBuilder()
            .acquire("B").load("t", "x").add("t", "t", 1).store("x", "t").release("B")
        )
        program = build_program([t0, t1], name="mixed-locks")
        report = analyze_program(program, seeds=range(20))
        assert not report.clean
        assert "x" in report.warned_locations()

    def test_unprotected_write_write_warns(self):
        program = build_program(
            [ThreadBuilder().store("x", 1), ThreadBuilder().store("x", 2)],
            name="ww",
        )
        report = analyze_program(program)
        assert not report.clean

    def test_racy_sb_warns(self):
        report = analyze_program(store_buffer_program(), seeds=range(20))
        assert not report.clean

    def test_read_sharing_after_handoff_tolerated(self):
        """Eraser's designed leniency: write-then-read-share without locks
        stays in SHARED (no warning) -- the flag hand-off pattern."""
        report = analyze_program(producer_consumer_workload(3), seeds=range(10))
        assert report.clean

    def test_exclusive_phase_needs_no_locks(self):
        program = build_program(
            [ThreadBuilder().store("x", 1).load("r", "x").store("x", 2)],
            name="solo",
        )
        report = analyze_program(program)
        assert report.clean
        assert report.states["x"] is LocationState.EXCLUSIVE


class TestMechanics:
    def test_acquire_requires_successful_tas(self):
        """A failed TestAndSet (read 1) must not count as holding the lock."""
        from repro.core.types import Condition

        t0 = ThreadBuilder().acquire("l").store("x", 1).release("l")
        t1 = ThreadBuilder().acquire("l").store("x", 2).release("l")
        program = build_program([t0, t1], name="contended")
        for seed in range(10):
            report = analyze_execution(random_sc_execution(program, seed))
            assert report.clean

    def test_release_clears_held_lock(self):
        t = (
            ThreadBuilder()
            .acquire("l").store("x", 1).release("l").store("y", 1)
        )
        other = ThreadBuilder().acquire("l").store("y", 2).release("l")
        program = build_program([t, other], name="post-release")
        # y is written by thread 0 *outside* the lock and by thread 1
        # inside it: no consistent lockset.
        report = analyze_program(program, seeds=range(20))
        assert "y" in report.warned_locations()

    def test_states_reported(self):
        report = analyze_program(lock_workload(2, 1))
        assert report.states["count"] in (
            LocationState.SHARED_MODIFIED, LocationState.EXCLUSIVE,
        )

    def test_warning_rendering(self):
        report = analyze_program(racy_program(), seeds=range(10))
        if report.warnings:
            assert "unprotected access" in str(report.warnings[0])
