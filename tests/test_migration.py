"""Tests for process migration (Section 5.1 / footnote 3)."""

import pytest

from repro.core.contract import is_sc_result
from repro.hw import AdveHillPolicy, Definition1Policy, SCPolicy
from repro.sim.migration import MigrationPlan, run_with_migration
from repro.sim.system import SystemConfig

from helpers import lock_increment_program, message_passing_program


class TestMigrationMechanics:
    def test_migrated_run_completes_with_correct_result(self):
        program = lock_increment_program(2)
        run = run_with_migration(
            program,
            AdveHillPolicy(),
            MigrationPlan(thread=0, after_accesses=2),
            SystemConfig(seed=3),
        )
        assert run.result.memory_value("count") == 2
        assert run.result.memory_value("lock") == 0

    def test_migration_after_program_end_is_a_plain_run(self):
        program = message_passing_program(sync=True)
        run = run_with_migration(
            program,
            AdveHillPolicy(),
            MigrationPlan(thread=0, after_accesses=99),
            SystemConfig(seed=1),
        )
        assert is_sc_result(program, run.result)

    def test_invalid_thread_rejected(self):
        with pytest.raises(ValueError):
            run_with_migration(
                message_passing_program(sync=True),
                AdveHillPolicy(),
                MigrationPlan(thread=5, after_accesses=1),
            )

    def test_migration_works_cacheless(self):
        program = message_passing_program(sync=True)
        run = run_with_migration(
            program,
            SCPolicy(),
            MigrationPlan(thread=1, after_accesses=1),
            SystemConfig(seed=2, caches=False),
        )
        assert is_sc_result(program, run.result)


class TestMigrationContract:
    """The context-switch condition keeps Definition 2 intact."""

    @pytest.mark.parametrize(
        "policy_factory", [SCPolicy, Definition1Policy, AdveHillPolicy]
    )
    @pytest.mark.parametrize("after", [1, 2, 3])
    def test_mp_sync_appears_sc_across_migration(self, policy_factory, after):
        program = message_passing_program(sync=True)
        for seed in range(8):
            run = run_with_migration(
                program,
                policy_factory(),
                MigrationPlan(thread=0, after_accesses=after),
                SystemConfig(seed=seed),
            )
            assert is_sc_result(program, run.result), (
                policy_factory().name, after, seed, run.result
            )

    @pytest.mark.parametrize("thread", [0, 1])
    def test_lock_program_appears_sc_across_migration(self, thread):
        program = lock_increment_program(2)
        for seed in range(6):
            run = run_with_migration(
                program,
                AdveHillPolicy(),
                MigrationPlan(thread=thread, after_accesses=2),
                SystemConfig(seed=seed),
            )
            assert run.result.memory_value("count") == 2
            assert is_sc_result(program, run.result)

    def test_migration_with_tiny_cache(self):
        program = lock_increment_program(2)
        run = run_with_migration(
            program,
            AdveHillPolicy(),
            MigrationPlan(thread=0, after_accesses=3),
            SystemConfig(seed=0, cache_capacity=2),
        )
        assert run.result.memory_value("count") == 2
