"""Integration tests: full hardware runs across configurations and policies."""

import pytest

from repro.core.contract import is_sc_result
from repro.core.sc import sc_results
from repro.core.types import Condition
from repro.hw import (
    AdveHillPolicy,
    Definition1Policy,
    RelaxedPolicy,
    SCPolicy,
)
from repro.machine.dsl import ThreadBuilder, build_program
from repro.sim.system import (
    FIGURE1_CONFIGS,
    SystemConfig,
    run_on_hardware,
    run_seed_sweep,
)

from helpers import (
    lock_increment_program,
    message_passing_program,
    store_buffer_program,
)

SEEDS = range(15)


def forbidden_sb_outcome(result):
    return result.reads[0][0] == 0 and result.reads[1][0] == 0


class TestFigure1Matrix:
    """E1: every configuration can violate SC when relaxed, never when SC."""

    @pytest.mark.parametrize("config_name", sorted(FIGURE1_CONFIGS))
    def test_relaxed_hardware_shows_violation(self, config_name):
        config = FIGURE1_CONFIGS[config_name]
        program = store_buffer_program()
        observed = any(
            forbidden_sb_outcome(
                run_on_hardware(program, RelaxedPolicy(), config.with_seed(s)).result
            )
            for s in range(40)
        )
        assert observed, f"{config_name} never produced the Figure-1 violation"

    @pytest.mark.parametrize("config_name", sorted(FIGURE1_CONFIGS))
    def test_sc_hardware_never_violates(self, config_name):
        config = FIGURE1_CONFIGS[config_name]
        program = store_buffer_program()
        for seed in range(40):
            run = run_on_hardware(program, SCPolicy(), config.with_seed(seed))
            assert not forbidden_sb_outcome(run.result)

    @pytest.mark.parametrize("config_name", sorted(FIGURE1_CONFIGS))
    def test_sc_hardware_results_always_in_sc_set(self, config_name):
        config = FIGURE1_CONFIGS[config_name]
        program = store_buffer_program()
        expected = sc_results(program)
        for seed in range(25):
            run = run_on_hardware(program, SCPolicy(), config.with_seed(seed))
            assert run.result in expected


class TestRunMechanics:
    def test_deterministic_given_seed(self):
        program = lock_increment_program(2)
        a = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=5))
        b = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=5))
        assert a.result == b.result and a.cycles == b.cycles

    def test_seed_sweep_accepts_class_or_instance(self):
        program = lock_increment_program(2)
        runs = run_seed_sweep(program, AdveHillPolicy, SystemConfig(), range(4))
        assert len(runs) == 4
        assert all(r.result.memory_value("count") == 2 for r in runs)
        shared = run_seed_sweep(
            program, AdveHillPolicy(), SystemConfig(), range(4)
        )
        assert [r.result for r in shared] == [r.result for r in runs]

    def test_seed_sweep_matches_per_seed_fresh_policy_runs(self):
        """Batching (one shared policy instance, one up-front validation)
        must not change any run: bit-identical results and cycle counts
        against the unbatched per-seed loop with a fresh policy each."""
        program = message_passing_program()
        config = SystemConfig()
        batched = run_seed_sweep(program, AdveHillPolicy(), config, SEEDS)
        for seed, run in zip(SEEDS, batched):
            solo = run_on_hardware(
                program, AdveHillPolicy(), config.with_seed(seed)
            )
            assert run.result == solo.result, f"seed {seed}"
            assert run.cycles == solo.cycles, f"seed {seed}"
            assert run.messages_sent == solo.messages_sent, f"seed {seed}"

    def test_seed_sweep_validates_before_first_run(self):
        """A bad (policy, config) pairing fails fast, not on seed 0's run."""
        with pytest.raises(ValueError):
            run_seed_sweep(
                store_buffer_program(),
                AdveHillPolicy(),
                SystemConfig(caches=False),
                range(3),
            )

    def test_with_seed_fast_copy_matches_replace(self):
        import dataclasses

        config = SystemConfig(topology="bus", net_jitter=9, cache_capacity=2)
        assert config.with_seed(7) == dataclasses.replace(config, seed=7)
        assert config.with_seed(config.seed) is config
        clone = config.with_seed(7)
        assert clone.seed == 7 and config.seed != 7
        with pytest.raises(dataclasses.FrozenInstanceError):
            clone.seed = 9  # still frozen

    def test_policy_requiring_caches_rejected_on_cacheless(self):
        with pytest.raises(ValueError):
            run_on_hardware(
                store_buffer_program(),
                AdveHillPolicy(),
                SystemConfig(caches=False),
            )

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            run_on_hardware(
                store_buffer_program(),
                SCPolicy(),
                SystemConfig(topology="torus"),
            )

    def test_execution_trace_commit_ordered(self):
        run = run_on_hardware(
            lock_increment_program(2), AdveHillPolicy(), SystemConfig(seed=1)
        )
        uids = [op.uid for op in run.execution.ops]
        assert uids == sorted(uids)
        # per-processor program order is embedded in the trace
        for proc in range(2):
            po = [op.po_index for op in run.execution.ops_of(proc)]
            assert po == sorted(po)

    def test_stats_populated(self):
        run = run_on_hardware(
            message_passing_program(), SCPolicy(), SystemConfig(seed=2)
        )
        assert run.cycles > 0
        assert run.messages_sent > 0
        assert all(s.halt_time is not None for s in run.proc_stats)
        assert len(run.raw_accesses) == 2

    def test_delay_instruction_consumes_cycles(self):
        fast = build_program([ThreadBuilder().store("x", 1)], name="fast")
        slow = build_program(
            [ThreadBuilder().delay(500).store("x", 1)], name="slow"
        )
        run_fast = run_on_hardware(fast, SCPolicy(), SystemConfig(seed=0))
        run_slow = run_on_hardware(slow, SCPolicy(), SystemConfig(seed=0))
        assert run_slow.cycles >= run_fast.cycles + 500


class TestContractAcrossPolicies:
    """E5 core: weakly ordered hardware appears SC to DRF0 programs."""

    @pytest.mark.parametrize(
        "policy_factory",
        [SCPolicy, Definition1Policy, AdveHillPolicy,
         lambda: AdveHillPolicy(drf1_optimized=True)],
    )
    def test_mp_sync_appears_sc(self, policy_factory):
        program = message_passing_program(sync=True)
        for seed in SEEDS:
            run = run_on_hardware(program, policy_factory(), SystemConfig(seed=seed))
            assert is_sc_result(program, run.result), (
                f"{run.policy_name} seed {seed}: {run.result}"
            )

    @pytest.mark.parametrize(
        "policy_factory",
        [SCPolicy, Definition1Policy, AdveHillPolicy,
         lambda: AdveHillPolicy(drf1_optimized=True)],
    )
    def test_lock_program_appears_sc(self, policy_factory):
        program = lock_increment_program(3)
        for seed in SEEDS:
            run = run_on_hardware(program, policy_factory(), SystemConfig(seed=seed))
            assert is_sc_result(program, run.result)
            assert run.result.memory_value("count") == 3

    def test_racy_program_can_break_on_weak_hardware(self):
        """Definition 2's premise is necessary: the racy SB program shows a
        non-SC outcome on at least one weakly ordered run."""
        program = store_buffer_program()
        observed = False
        for seed in range(60):
            run = run_on_hardware(
                program, Definition1Policy(), SystemConfig(seed=seed)
            )
            if forbidden_sb_outcome(run.result):
                observed = True
                break
        assert observed

    def test_sb_with_sync_accesses_is_safe_on_weak_hardware(self):
        """Making the accesses synchronizing restores SC (the contract)."""
        p0 = ThreadBuilder().sync_store("x", 1).test_and_set("r0", "y", 1)
        p1 = ThreadBuilder().sync_store("y", 1).test_and_set("r1", "x", 1)
        program = build_program([p0, p1], name="sb-sync")
        for policy_factory in (Definition1Policy, AdveHillPolicy):
            for seed in SEEDS:
                run = run_on_hardware(
                    program, policy_factory(), SystemConfig(seed=seed)
                )
                assert not forbidden_sb_outcome(run.result)


class TestPerformanceShape:
    """The coarse performance ordering the paper argues for."""

    def test_weak_ordering_not_slower_than_sc_on_producer(self):
        from repro.workloads import producer_consumer_workload

        program = producer_consumer_workload(batch_size=8)
        def mean_cycles(factory):
            return sum(
                run_on_hardware(program, factory(), SystemConfig(seed=s)).cycles
                for s in range(8)
            ) / 8

        sc = mean_cycles(SCPolicy)
        def1 = mean_cycles(Definition1Policy)
        ah = mean_cycles(AdveHillPolicy)
        assert def1 <= sc * 1.02
        assert ah <= def1 * 1.05

    def test_adve_hill_releaser_does_not_gate_stall(self):
        """Figure 3: the releasing processor has no generation-gate stalls
        under the new implementation, but does under Definition 1."""
        from repro.litmus.figures import figure3_program

        program = figure3_program(release_work=0, post_release_work=60)
        run_def1 = run_on_hardware(program, Definition1Policy(), SystemConfig(seed=3))
        run_ah = run_on_hardware(program, AdveHillPolicy(), SystemConfig(seed=3))
        assert run_ah.proc_stats[0].gate_stall_cycles == 0
        assert run_def1.proc_stats[0].gate_stall_cycles > 0
