"""Unit tests for the discrete-event kernel, interconnects, and access records."""

import pytest

from repro.core.types import OpKind
from repro.sim.access import AccessError, AccessRecord, BlockLevel, GateCondition
from repro.sim.events import SimulationError, Simulator
from repro.sim.messages import Message, MsgKind
from repro.sim.network import Bus, GeneralNetwork


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.at(5, lambda: order.append("b"))
        sim.at(1, lambda: order.append("a"))
        sim.at(9, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]
        assert sim.now == 9

    def test_ties_run_in_insertion_order(self):
        sim = Simulator()
        order = []
        sim.at(3, lambda: order.append(1))
        sim.at(3, lambda: order.append(2))
        sim.run()
        assert order == [1, 2]

    def test_after_is_relative(self):
        sim = Simulator()
        times = []
        sim.at(4, lambda: sim.after(3, lambda: times.append(sim.now)))
        sim.run()
        assert times == [7]

    def test_scheduling_in_past_rejected(self):
        sim = Simulator()
        sim.at(5, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(2, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().after(-1, lambda: None)

    def test_until_stops_early(self):
        sim = Simulator()
        fired = []
        sim.at(2, lambda: fired.append(2))
        sim.at(10, lambda: fired.append(10))
        sim.run(until=5)
        assert fired == [2]
        assert sim.pending() == 1

    def test_max_events_guard(self):
        sim = Simulator()

        def rearm():
            sim.after(1, rearm)

        sim.at(0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_stop_when_predicate(self):
        sim = Simulator()
        count = {"n": 0}

        def tick():
            count["n"] += 1
            sim.after(1, tick)

        sim.at(0, tick)
        sim.run(stop_when=lambda: count["n"] >= 5, max_events=100)
        assert count["n"] == 5


class TestBus:
    def _msg(self, src="a", dst="b"):
        return Message(MsgKind.MEM_READ, src=src, dst=dst, location="x")

    def test_fifo_delivery(self):
        sim = Simulator()
        bus = Bus(sim, latency=2)
        got = []
        bus.attach("b", lambda m: got.append(("b", sim.now, m.msg_id)))
        m1, m2 = self._msg(), self._msg()
        bus.send(m1)
        bus.send(m2)
        sim.run()
        assert [g[2] for g in got] == [m1.msg_id, m2.msg_id]
        # serialized: second transfer waits for the first
        assert got[0][1] == 2 and got[1][1] == 4

    def test_bus_serializes_across_senders(self):
        sim = Simulator()
        bus = Bus(sim, latency=3)
        got = []
        bus.attach("m", lambda m: got.append(sim.now))
        bus.send(self._msg(dst="m"))
        bus.send(self._msg(src="c", dst="m"))
        sim.run()
        assert got == [3, 6]

    def test_unknown_destination_raises(self):
        sim = Simulator()
        bus = Bus(sim, latency=1)
        bus.send(self._msg(dst="ghost"))
        with pytest.raises(SimulationError):
            sim.run()

    def test_double_attach_rejected(self):
        sim = Simulator()
        bus = Bus(sim, latency=1)
        bus.attach("n", lambda m: None)
        with pytest.raises(SimulationError):
            bus.attach("n", lambda m: None)

    def test_zero_latency_rejected(self):
        with pytest.raises(SimulationError):
            Bus(Simulator(), latency=0)


class TestGeneralNetwork:
    def test_deterministic_for_seed(self):
        arrivals = []
        for _ in range(2):
            sim = Simulator()
            net = GeneralNetwork(sim, latency=3, jitter=6, seed=42)
            got = []
            net.attach("b", lambda m: got.append(sim.now))
            for _ in range(5):
                net.send(Message(MsgKind.MEM_READ, src="a", dst="b", location="x"))
            sim.run()
            arrivals.append(tuple(got))
        assert arrivals[0] == arrivals[1]

    def test_can_reorder_messages(self):
        """Some seed reorders two back-to-back messages (Lamport's hazard)."""
        reordered = False
        for seed in range(50):
            sim = Simulator()
            net = GeneralNetwork(sim, latency=1, jitter=8, seed=seed)
            got = []
            net.attach("b", lambda m: got.append(m.msg_id))
            m1 = Message(MsgKind.MEM_READ, src="a", dst="b", location="x")
            m2 = Message(MsgKind.MEM_READ, src="a", dst="b", location="y")
            net.send(m1)
            net.send(m2)
            sim.run()
            if got == [m2.msg_id, m1.msg_id]:
                reordered = True
                break
        assert reordered

    def test_fifo_per_pair_option(self):
        for seed in range(30):
            sim = Simulator()
            net = GeneralNetwork(sim, latency=1, jitter=8, seed=seed, fifo_per_pair=True)
            got = []
            net.attach("b", lambda m: got.append(m.msg_id))
            msgs = [
                Message(MsgKind.MEM_READ, src="a", dst="b", location="x")
                for _ in range(4)
            ]
            for m in msgs:
                net.send(m)
            sim.run()
            assert got == [m.msg_id for m in msgs]

    def test_message_counter(self):
        sim = Simulator()
        net = GeneralNetwork(sim, seed=0)
        net.attach("b", lambda m: None)
        net.send(Message(MsgKind.MEM_READ, src="a", dst="b", location="x"))
        assert net.messages_sent == 1


class TestAccessRecord:
    def _access(self, kind=OpKind.DATA_READ):
        return AccessRecord(0, 0, 0, kind, "x", None if kind.has_read else 1)

    def test_lifecycle_flags(self):
        a = self._access()
        assert not a.generated and not a.committed and not a.globally_performed
        a.mark_generated(1)
        a.mark_committed(5, 42)
        a.mark_globally_performed(7)
        assert a.generate_time == 1 and a.commit_time == 5 and a.gp_time == 7
        assert a.value_read == 42

    def test_double_commit_rejected(self):
        a = self._access()
        a.mark_committed(1, 0)
        with pytest.raises(AccessError):
            a.mark_committed(2, 0)

    def test_read_commit_requires_value(self):
        a = self._access()
        with pytest.raises(AccessError):
            a.mark_committed(1, None)

    def test_commit_callback_fires_once(self):
        a = self._access()
        calls = []
        a.on_commit(lambda acc: calls.append(acc.value_read))
        a.mark_committed(3, 9)
        assert calls == [9]

    def test_callback_after_event_fires_immediately(self):
        a = self._access()
        a.mark_committed(3, 9)
        calls = []
        a.on_commit(lambda acc: calls.append(1))
        assert calls == [1]

    def test_to_operation_roundtrip(self):
        a = AccessRecord(4, 2, 1, OpKind.SYNC_RMW, "s", 1)
        a.mark_committed(10, 0)
        op = a.to_operation()
        assert op.proc == 2 and op.value_read == 0 and op.value_written == 1

    def test_to_operation_before_commit_rejected(self):
        with pytest.raises(AccessError):
            self._access().to_operation()

    def test_gate_condition_satisfaction(self):
        a = self._access(OpKind.DATA_WRITE)
        commit_gate = GateCondition(a, BlockLevel.COMMIT)
        gp_gate = GateCondition(a, BlockLevel.GP)
        assert not commit_gate.satisfied and not gp_gate.satisfied
        a.mark_committed(1)
        assert commit_gate.satisfied and not gp_gate.satisfied
        a.mark_globally_performed(2)
        assert gp_gate.satisfied

    def test_gate_subscription(self):
        a = self._access(OpKind.DATA_WRITE)
        fired = []
        GateCondition(a, BlockLevel.GP).subscribe(lambda: fired.append(True))
        a.mark_committed(1)
        assert not fired
        a.mark_globally_performed(2)
        assert fired == [True]
