"""Tests for the run-report rendering (tables, timelines, summaries)."""

from repro.hw import AdveHillPolicy, Definition1Policy, SCPolicy
from repro.report import access_table, summarize, timeline
from repro.sim.system import SystemConfig, run_on_hardware

from helpers import lock_increment_program, message_passing_program


def run_once(policy_factory=AdveHillPolicy, caches=True):
    return run_on_hardware(
        message_passing_program(sync=True),
        policy_factory(),
        SystemConfig(seed=4, caches=caches),
    )


class TestAccessTable:
    def test_lists_every_access(self):
        run = run_once()
        table = access_table(run)
        total = sum(len(a) for a in run.raw_accesses)
        # header + rule + one line per access
        assert len(table.splitlines()) == total + 2

    def test_contains_kinds_and_locations(self):
        table = access_table(run_once())
        assert "Sw" in table  # the Unset
        assert "flag" in table and "data" in table

    def test_uncommitted_fields_render_as_dash(self):
        run = run_once()
        assert "-" in access_table(run)


class TestTimeline:
    def test_one_lane_per_access(self):
        run = run_once()
        art = timeline(run, width=40)
        total = sum(len(a) for a in run.raw_accesses)
        lanes = [l for l in art.splitlines() if l.endswith("|")]
        assert len(lanes) == total

    def test_globally_performed_marked(self):
        art = timeline(run_once(), width=40)
        assert "G" in art

    def test_header_mentions_policy_and_cycles(self):
        run = run_once(SCPolicy)
        art = timeline(run)
        assert "sequential-consistency" in art
        assert str(run.cycles) in art


class TestSummarize:
    def test_cache_stats_included(self):
        text = summarize(run_once())
        assert "hits=" in text and "misses=" in text
        assert "directory:" in text

    def test_cacheless_summary_has_no_cache_stats(self):
        run = run_on_hardware(
            message_passing_program(sync=True),
            SCPolicy(),
            SystemConfig(seed=1, caches=False),
        )
        text = summarize(run)
        assert "hits=" not in text
        assert "directory:" not in text

    def test_stall_cycles_reported(self):
        run = run_on_hardware(
            lock_increment_program(2), Definition1Policy(), SystemConfig(seed=2)
        )
        text = summarize(run)
        assert "gate-stall=" in text and "block-stall=" in text
