"""Tests for finite cache capacity: evictions, write-backs, reserve stalls."""

import pytest

from repro.core.contract import is_sc_result
from repro.core.types import OpKind
from repro.hw import AdveHillPolicy, Definition1Policy, SCPolicy
from repro.machine.dsl import ThreadBuilder, build_program
from repro.sim.cache import LineState
from repro.sim.system import SystemConfig, run_on_hardware

from helpers import lock_increment_program, message_passing_program


def single_thread_program(locations, repeat=1):
    t = ThreadBuilder()
    for _ in range(repeat):
        for i, loc in enumerate(locations):
            t.store(loc, i + 1)
        for loc in locations:
            t.load(f"r_{loc}", loc)
    return build_program([t], name="walker")


class TestEvictionMechanics:
    def test_working_set_larger_than_cache_still_correct(self):
        program = single_thread_program(["a", "b", "c", "d"], repeat=2)
        run = run_on_hardware(
            program, SCPolicy(), SystemConfig(seed=0, cache_capacity=2)
        )
        # every load sees the stored value
        assert run.result.reads[0] == (1, 2, 3, 4, 1, 2, 3, 4)

    def test_dirty_eviction_writes_back_to_memory(self):
        program = single_thread_program(["a", "b", "c"])
        run = run_on_hardware(
            program, SCPolicy(), SystemConfig(seed=0, cache_capacity=1)
        )
        assert run.result.memory_value("a") == 1
        assert run.result.memory_value("b") == 2

    def test_capacity_one_forces_evictions(self):
        program = single_thread_program(["a", "b", "c"])
        run = run_on_hardware(
            program, SCPolicy(), SystemConfig(seed=0, cache_capacity=1)
        )
        bigger = run_on_hardware(
            program, SCPolicy(), SystemConfig(seed=0, cache_capacity=8)
        )
        assert run.cycles > bigger.cycles  # write-backs cost time

    def test_unbounded_default_never_evicts(self):
        program = single_thread_program(["a", "b", "c", "d", "e"])
        run = run_on_hardware(program, SCPolicy(), SystemConfig(seed=0))
        assert run.cycles > 0  # and no SimulationError from eviction paths


class TestCapacityContract:
    """The contract must survive evictions under every policy."""

    @pytest.mark.parametrize("capacity", [1, 2, 3])
    @pytest.mark.parametrize(
        "policy_factory",
        [SCPolicy, Definition1Policy, AdveHillPolicy,
         lambda: AdveHillPolicy(drf1_optimized=True)],
    )
    def test_lock_program_appears_sc_with_tiny_cache(
        self, capacity, policy_factory
    ):
        program = lock_increment_program(2)
        for seed in range(6):
            run = run_on_hardware(
                program,
                policy_factory(),
                SystemConfig(seed=seed, cache_capacity=capacity),
            )
            assert run.result.memory_value("count") == 2
            assert is_sc_result(program, run.result)

    @pytest.mark.parametrize("capacity", [1, 2])
    def test_mp_sync_appears_sc_with_tiny_cache(self, capacity):
        program = message_passing_program(sync=True)
        for seed in range(8):
            run = run_on_hardware(
                program,
                AdveHillPolicy(),
                SystemConfig(seed=seed, cache_capacity=capacity),
            )
            assert is_sc_result(program, run.result)

    def test_reserved_line_never_evicted(self):
        """Fill the cache while a line is reserved; the reserved line must
        survive (the paper: it is never flushed)."""
        # P0: warm d at P1 so the write to d is slow; sync on s sets the
        # reserve; then touch many other lines to pressure capacity.
        p0 = (
            ThreadBuilder()
            .store("d", 1)
            .unset("s")
            .store("e0", 1)
            .store("e1", 1)
            .store("e2", 1)
        )
        from repro.core.types import Condition

        p1 = (
            ThreadBuilder()
            .load("w", "d")
            .label("spin")
            .sync_load("r", "s")
            .branch_if(Condition.NE, "r", 0, "spin")
            .load("v", "d")
        )
        program = build_program(
            [p0, p1], initial_memory={"s": 1}, name="reserve-pressure"
        )
        for seed in range(10):
            run = run_on_hardware(
                program,
                AdveHillPolicy(),
                SystemConfig(seed=seed, cache_capacity=2),
            )
            assert run.result.reads[1][-1] == 1  # v = d = 1 after the flag
            assert is_sc_result(program, run.result)
