"""Property tests across hardware configurations.

The core properties (`test_properties.py`) run on the default
network+cache configuration; these repeat the critical ones on the other
substrates: the bus, the cacheless systems, tiny caches, and the
release-consistency policy.
"""

from hypothesis import given, settings, strategies as st

from repro.core.contract import is_sc_result
from repro.hw import (
    AdveHillPolicy,
    Definition1Policy,
    ReleaseConsistencyPolicy,
    SCPolicy,
)
from repro.sim.system import SystemConfig, run_on_hardware

from test_properties import small_programs


@settings(max_examples=20, deadline=None)
@given(small_programs(max_threads=2, max_ops=3), st.integers(0, 100))
def test_sc_hardware_on_bus_appears_sc(program, seed):
    run = run_on_hardware(
        program, SCPolicy(), SystemConfig(seed=seed, topology="bus")
    )
    assert is_sc_result(program, run.result)


@settings(max_examples=20, deadline=None)
@given(small_programs(max_threads=2, max_ops=3), st.integers(0, 100))
def test_sc_hardware_cacheless_appears_sc(program, seed):
    run = run_on_hardware(
        program, SCPolicy(), SystemConfig(seed=seed, caches=False)
    )
    assert is_sc_result(program, run.result)


@settings(max_examples=20, deadline=None)
@given(small_programs(max_threads=2, max_ops=3), st.integers(0, 100))
def test_sc_hardware_cacheless_bus_appears_sc(program, seed):
    run = run_on_hardware(
        program,
        SCPolicy(),
        SystemConfig(seed=seed, caches=False, topology="bus"),
    )
    assert is_sc_result(program, run.result)


@settings(max_examples=15, deadline=None)
@given(small_programs(max_threads=2, max_ops=3), st.integers(0, 100))
def test_sc_hardware_with_tiny_cache_appears_sc(program, seed):
    run = run_on_hardware(
        program, SCPolicy(), SystemConfig(seed=seed, cache_capacity=1)
    )
    assert is_sc_result(program, run.result)


@settings(max_examples=15, deadline=None)
@given(small_programs(max_threads=2, max_ops=3), st.integers(0, 100))
def test_weak_policies_complete_with_tiny_cache(program, seed):
    """Liveness under capacity pressure: every policy finishes every
    random program with a one-line cache, and all writes globally perform."""
    for factory in (Definition1Policy, AdveHillPolicy, ReleaseConsistencyPolicy):
        run = run_on_hardware(
            program, factory(), SystemConfig(seed=seed, cache_capacity=1)
        )
        for per_proc in run.raw_accesses:
            writes = [a for a in per_proc if a.has_write]
            assert all(a.globally_performed for a in writes)


@settings(max_examples=15, deadline=None)
@given(small_programs(max_threads=2, max_ops=3), st.integers(0, 100))
def test_rc_policy_deterministic(program, seed):
    a = run_on_hardware(
        program, ReleaseConsistencyPolicy(), SystemConfig(seed=seed)
    )
    b = run_on_hardware(
        program, ReleaseConsistencyPolicy(), SystemConfig(seed=seed)
    )
    assert a.result == b.result and a.cycles == b.cycles


@settings(max_examples=15, deadline=None)
@given(small_programs(max_threads=2, max_ops=2), st.integers(0, 50))
def test_bus_run_message_count_positive_for_memory_programs(program, seed):
    run = run_on_hardware(
        program, SCPolicy(), SystemConfig(seed=seed, topology="bus")
    )
    if program.static_op_count():
        assert run.messages_sent > 0


@settings(max_examples=15, deadline=None)
@given(small_programs(max_threads=2, max_ops=3), st.integers(0, 100))
def test_sc_hardware_on_snooping_bus_appears_sc(program, seed):
    run = run_on_hardware(
        program,
        SCPolicy(),
        SystemConfig(seed=seed, coherence="snoop", topology="bus"),
    )
    assert is_sc_result(program, run.result)


@settings(max_examples=15, deadline=None)
@given(small_programs(max_threads=3, max_ops=3), st.integers(0, 100))
def test_snoop_substrate_liveness_for_weak_policies(program, seed):
    config = SystemConfig(seed=seed, coherence="snoop", topology="bus")
    for factory in (Definition1Policy, AdveHillPolicy):
        run = run_on_hardware(program, factory(), config)
        for per_proc in run.raw_accesses:
            assert all(a.committed for a in per_proc)
